package energy

import (
	"errors"
	"math"
	"testing"
	"time"

	"mntp/internal/ntppkt"
)

func almost(a, b Joules, rel float64) bool {
	return math.Abs(float64(a-b)) <= rel*math.Abs(float64(b))
}

func TestSingleTransferEnergy(t *testing.T) {
	m := NewMeter(ThreeG())
	m.Activity(0, 100*time.Millisecond)
	// promotion 2s·0.53 + active 0.1s·0.68 + tail 12.5s·0.46.
	want := Joules(2*0.53 + 0.1*0.68 + 12.5*0.46)
	if got := m.Energy(); !almost(got, want, 1e-9) {
		t.Errorf("energy = %v, want %v", got, want)
	}
	if m.Bursts() != 1 {
		t.Errorf("bursts = %d", m.Bursts())
	}
}

func TestCloseTransfersShareOneBurst(t *testing.T) {
	m := NewMeter(ThreeG())
	// Three transfers 5 s apart: all within one 12.5 s tail.
	for i := 0; i < 3; i++ {
		m.Activity(time.Duration(i)*5*time.Second, 100*time.Millisecond)
	}
	if m.Bursts() != 1 {
		t.Fatalf("bursts = %d, want 1 (tail merging)", m.Bursts())
	}
	// One promotion + one tail despite three transfers.
	single := NewMeter(ThreeG())
	single.Activity(0, 100*time.Millisecond)
	if m.Energy() >= 3*single.Energy() {
		t.Errorf("merged bursts should cost less than 3 separate ones")
	}
}

func TestDistantTransfersSeparateBursts(t *testing.T) {
	m := NewMeter(ThreeG())
	m.Activity(0, 100*time.Millisecond)
	m.Activity(time.Minute, 100*time.Millisecond)
	if m.Bursts() != 2 {
		t.Errorf("bursts = %d, want 2", m.Bursts())
	}
	single := NewMeter(ThreeG())
	single.Activity(0, 100*time.Millisecond)
	if !almost(m.Energy(), 2*single.Energy(), 1e-9) {
		t.Errorf("two distant transfers = %v, want 2x single %v", m.Energy(), single.Energy())
	}
}

func TestPeriodicSmallTransfersCostlyOn3G(t *testing.T) {
	// The Balasubramanian finding the paper leans on: periodic small
	// transfers (one per minute over an hour) cost far more than one
	// bulk transfer of the same total active time.
	periodic := NewMeter(ThreeG())
	for i := 0; i < 60; i++ {
		periodic.Activity(time.Duration(i)*time.Minute, 500*time.Millisecond)
	}
	bulk := NewMeter(ThreeG())
	bulk.Activity(0, 30*time.Second) // same 30 s of active radio
	if periodic.Energy() < 10*bulk.Energy() {
		t.Errorf("periodic %v not ≫ bulk %v", periodic.Energy(), bulk.Energy())
	}
}

func TestWiFiCheaperThan3GForPolling(t *testing.T) {
	poll := func(model RadioModel) Joules {
		m := NewMeter(model)
		for i := 0; i < 120; i++ {
			m.Activity(time.Duration(i)*30*time.Second, 50*time.Millisecond)
		}
		return m.Energy()
	}
	if wifi, cg := poll(WiFi()), poll(ThreeG()); wifi >= cg/10 {
		t.Errorf("wifi polling %v not ≪ 3G %v", wifi, cg)
	}
}

func TestEmptyMeter(t *testing.T) {
	m := NewMeter(LTE())
	if m.Energy() != 0 || m.Bursts() != 0 || m.Events() != 0 {
		t.Error("empty meter non-zero")
	}
}

func TestUnsortedActivityHandled(t *testing.T) {
	a := NewMeter(LTE())
	a.Activity(time.Minute, 100*time.Millisecond)
	a.Activity(0, 100*time.Millisecond)
	b := NewMeter(LTE())
	b.Activity(0, 100*time.Millisecond)
	b.Activity(time.Minute, 100*time.Millisecond)
	if a.Energy() != b.Energy() {
		t.Error("energy depends on insertion order")
	}
}

func TestPerDay(t *testing.T) {
	if got := PerDay(10, 6*time.Hour); got != 40 {
		t.Errorf("PerDay = %v, want 40", got)
	}
	if got := PerDay(10, 0); got != 0 {
		t.Errorf("PerDay(0 duration) = %v", got)
	}
}

// fakeTransport answers instantly, optionally failing.
type fakeTransport struct {
	fail  bool
	now   *time.Duration
	rtt   time.Duration
	calls int
}

func (f *fakeTransport) Exchange(server string, req *ntppkt.Packet) (*ntppkt.Packet, time.Time, error) {
	f.calls++
	*f.now += f.rtt
	if f.fail {
		return nil, time.Time{}, errors.New("lost")
	}
	return &ntppkt.Packet{Mode: ntppkt.ModeServer}, time.Time{}, nil
}

func TestMeteredTransportRecordsExchanges(t *testing.T) {
	now := time.Duration(0)
	inner := &fakeTransport{now: &now, rtt: 80 * time.Millisecond}
	meter := NewMeter(WiFi())
	mt := &MeteredTransport{Inner: inner, Meter: meter, Now: func() time.Duration { return now }}

	req := ntppkt.NewSNTPClient(ntppkt.Version4, 0)
	for i := 0; i < 5; i++ {
		now += time.Minute
		mt.Exchange("srv", req)
	}
	if meter.Events() != 5 {
		t.Errorf("events = %d", meter.Events())
	}
	if meter.Energy() <= 0 {
		t.Error("no energy recorded")
	}
}

func TestMeteredTransportRecordsFailuresToo(t *testing.T) {
	// A timed-out request still kept the radio awake.
	now := time.Duration(0)
	inner := &fakeTransport{now: &now, rtt: 2 * time.Second, fail: true}
	meter := NewMeter(LTE())
	mt := &MeteredTransport{Inner: inner, Meter: meter, Now: func() time.Duration { return now }}
	if _, _, err := mt.Exchange("srv", ntppkt.NewSNTPClient(ntppkt.Version4, 0)); err == nil {
		t.Fatal("expected failure")
	}
	if meter.Events() != 1 {
		t.Error("failed exchange not metered")
	}
}
