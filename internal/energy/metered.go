package energy

import (
	"time"

	"mntp/internal/ntppkt"
)

// innerTransport matches exchange.Transport without importing it
// (avoids the dependency for this leaf package).
type innerTransport interface {
	Exchange(server string, req *ntppkt.Packet) (*ntppkt.Packet, time.Time, error)
}

// MeteredTransport decorates a transport, recording every exchange as
// radio activity on the meter. The same decorator wraps the simulated
// and the UDP transports, so any client's energy footprint can be
// measured without touching the client.
type MeteredTransport struct {
	Inner innerTransport
	Meter *Meter
	// Now supplies the virtual (or wall-relative) time of activity.
	Now func() time.Duration
}

// Exchange implements the transport interface.
func (m *MeteredTransport) Exchange(server string, req *ntppkt.Packet) (*ntppkt.Packet, time.Time, error) {
	start := m.Now()
	resp, t4, err := m.Inner.Exchange(server, req)
	m.Meter.Activity(start, m.Now()-start)
	return resp, t4, err
}
