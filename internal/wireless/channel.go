// Package wireless models the 802.11 last hop of the paper's testbed
// (§3.2): a stochastic channel whose observable surface is exactly what
// MNTP consumes — RSSI and noise hints — and what packets experience —
// one-way delay and loss — with the two coupled through shared channel
// state (signal strength, interference bursts and medium occupancy).
//
// The model composes:
//
//   - a log-distance signal path: RSSI = TxPower − PathLoss + shadowing,
//     where shadowing is a Gauss–Markov (Ornstein–Uhlenbeck) process and
//     TxPower is the WAP actuator the monitor node manipulates;
//   - an interference/noise process: a quiet floor with Markov-modulated
//     bursts whose arrival rate grows with medium occupancy (adjacent
//     channel traffic), mirroring the paper's cross-traffic injection;
//   - an occupancy process: ambient load plus the download load the
//     monitor node injects, driving queueing delay and collision loss;
//   - per-packet delay and loss: base access delay, occupancy-driven
//     queueing (the bufferbloat spikes behind the paper's 600 ms /
//     1.58 s outliers), SNR-driven MAC retries and Gilbert-style loss.
//
// Channel state advances on a fixed quantum of virtual time, so the
// realized channel is independent of when it is observed — experiments
// with different polling schedules see the same underlying channel.
package wireless

import (
	"math"
	"math/rand"
	"sync"
	"time"

	"mntp/internal/hints"
	"mntp/internal/netsim"
)

// Params configures a Channel. Zero values select the defaults noted
// on each field (applied by NewChannel).
type Params struct {
	// TxPowerDBm is the WAP transmit power (default 20 dBm, the legal
	// indoor maximum the testbed starts from).
	TxPowerDBm float64
	// PathLossDB is the static path loss between WAP and client
	// (default 75 dB, a same-room 5 GHz link).
	PathLossDB float64
	// ShadowSigmaDB is the stationary standard deviation of shadow
	// fading (default 3.5 dB).
	ShadowSigmaDB float64
	// ShadowTau is the shadowing correlation time (default 25 s).
	ShadowTau time.Duration
	// FastSigmaDB is per-reading measurement jitter on hints
	// (default 1 dB).
	FastSigmaDB float64
	// NoiseFloorDBm is the quiet-channel noise level (default −93 dBm).
	NoiseFloorDBm float64
	// BurstNoiseDBm is the mean noise level during an interference
	// burst (default −67 dBm — above the paper's −70 dBm gate).
	BurstNoiseDBm float64
	// BurstRatePerMin is the quiet-channel burst arrival rate
	// (default 0.25/min).
	BurstRatePerMin float64
	// BurstLoadRatePerMin is the extra burst rate at full occupancy
	// (default 2.2/min).
	BurstLoadRatePerMin float64
	// BurstMean is the mean burst duration (default 14 s).
	BurstMean time.Duration
	// AmbientLoad is the baseline medium occupancy without injected
	// cross traffic (default 0.08).
	AmbientLoad float64
	// LoadNoiseDB couples medium occupancy into the measured noise
	// level: co-channel traffic raises the noise indication by
	// LoadNoiseDB·occupancy dB above the floor (default 34 dB — a
	// saturated channel reads ≈ −60 dBm). This is what makes heavy
	// cross traffic visible to MNTP's hints, as it was on the paper's
	// testbed.
	LoadNoiseDB float64
	// BaseDelay is the uncontended access delay (default 3 ms).
	BaseDelay time.Duration
	// QueueScale scales occupancy-driven queueing delay (default
	// 45 ms): mean queue wait = QueueScale·ρ/(1−ρ).
	QueueScale time.Duration
	// RetrySlot is the mean per-retry penalty when SNR is poor
	// (default 22 ms).
	RetrySlot time.Duration
	// MaxDelay is the tail-drop bound: a packet whose access delay
	// would exceed it is dropped instead (finite queue; default
	// 1.1 s, matching the ~1 s worst offsets of the paper's
	// uncorrected wireless runs).
	MaxDelay time.Duration
	// RTSCTS enables the RTS/CTS handshake. The paper disabled it and
	// notes "given the introduction of additional variable delays due
	// to RTS/CTS, we would expect the performance of SNTP to be even
	// worse with this feature enabled" (§3.2): each packet pays a
	// reservation handshake whose wait grows with occupancy, in
	// exchange for fewer collision losses.
	RTSCTS bool
	// Seed drives all channel randomness.
	Seed int64
}

func (p *Params) applyDefaults() {
	def := func(v *float64, d float64) {
		if *v == 0 {
			*v = d
		}
	}
	defDur := func(v *time.Duration, d time.Duration) {
		if *v == 0 {
			*v = d
		}
	}
	def(&p.TxPowerDBm, 20)
	def(&p.PathLossDB, 75)
	def(&p.ShadowSigmaDB, 3.5)
	defDur(&p.ShadowTau, 25*time.Second)
	def(&p.FastSigmaDB, 1)
	def(&p.NoiseFloorDBm, -93)
	def(&p.BurstNoiseDBm, -67)
	def(&p.BurstRatePerMin, 0.25)
	def(&p.BurstLoadRatePerMin, 2.2)
	defDur(&p.BurstMean, 14*time.Second)
	def(&p.AmbientLoad, 0.08)
	def(&p.LoadNoiseDB, 34)
	defDur(&p.BaseDelay, 3*time.Millisecond)
	defDur(&p.QueueScale, 45*time.Millisecond)
	defDur(&p.RetrySlot, 22*time.Millisecond)
	defDur(&p.MaxDelay, 1100*time.Millisecond)
}

// quantum is the state-integration step.
const quantum = 500 * time.Millisecond

// Channel is the simulated 802.11 channel. It implements
// hints.Provider and netsim.PathModel. Safe for use from scheduler
// callbacks and Procs (which never run concurrently), and internally
// locked for defensive safety.
type Channel struct {
	mu sync.Mutex

	p       Params
	timeNow func() time.Duration
	rng     *rand.Rand // state-evolution randomness (quantized)
	pktRng  *rand.Rand // per-packet randomness
	obsRng  *rand.Rand // per-observation measurement jitter

	last       time.Duration
	shadow     float64 // dB around 0
	inBurst    bool
	burstNoise float64 // dBm, sampled at burst entry
	txPower    float64
	load       float64 // injected cross-traffic occupancy 0..1
}

// NewChannel creates a channel over the given virtual time source.
func NewChannel(p Params, timeNow func() time.Duration) *Channel {
	p.applyDefaults()
	return &Channel{
		p:       p,
		timeNow: timeNow,
		rng:     rand.New(rand.NewSource(p.Seed)),
		pktRng:  rand.New(rand.NewSource(p.Seed ^ 0x7f4a7c15_9e3779b9)),
		obsRng:  rand.New(rand.NewSource(p.Seed ^ 0x4c957f2d_5851f42d)),
		txPower: p.TxPowerDBm,
	}
}

// advanceTo integrates channel state to virtual time t (mu held).
func (c *Channel) advanceTo(t time.Duration) {
	for c.last+quantum <= t {
		dt := quantum.Seconds()
		// Ornstein–Uhlenbeck shadowing.
		tau := c.p.ShadowTau.Seconds()
		a := math.Exp(-dt / tau)
		c.shadow = c.shadow*a + c.p.ShadowSigmaDB*math.Sqrt(1-a*a)*c.rng.NormFloat64()
		// Markov-modulated interference bursts.
		if c.inBurst {
			exitProb := dt / c.p.BurstMean.Seconds()
			if c.rng.Float64() < exitProb {
				c.inBurst = false
			}
		} else {
			ratePerSec := (c.p.BurstRatePerMin + c.p.BurstLoadRatePerMin*c.occupancyLocked()) / 60
			if c.rng.Float64() < ratePerSec*dt {
				c.inBurst = true
				c.burstNoise = c.p.BurstNoiseDBm + 2*c.rng.NormFloat64()
			}
		}
		c.last += quantum
	}
}

// occupancyLocked returns total medium occupancy in [0, 0.97].
func (c *Channel) occupancyLocked() float64 {
	rho := c.p.AmbientLoad + c.load
	if rho > 0.97 {
		rho = 0.97
	}
	if rho < 0 {
		rho = 0
	}
	return rho
}

// rssiLocked returns the current mean RSSI (no measurement jitter).
func (c *Channel) rssiLocked() float64 { return c.txPower - c.p.PathLossDB + c.shadow }

// noiseLocked returns the current mean noise level: the quiet floor
// raised by occupancy-coupled co-channel interference, or the burst
// level during an interference burst, whichever is louder.
func (c *Channel) noiseLocked() float64 {
	n := c.p.NoiseFloorDBm + c.p.LoadNoiseDB*c.occupancyLocked()
	if c.inBurst && c.burstNoise > n {
		return c.burstNoise
	}
	return n
}

// Hints implements hints.Provider: one measured reading of RSSI and
// noise, including per-reading measurement jitter.
func (c *Channel) Hints() hints.Hints {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.advanceTo(c.timeNow())
	return hints.Hints{
		RSSI:  c.rssiLocked() + c.p.FastSigmaDB*c.obsRng.NormFloat64(),
		Noise: c.noiseLocked() + 0.5*c.p.FastSigmaDB*c.obsRng.NormFloat64(),
	}
}

// State is a harness-facing snapshot of the channel's hidden state.
type State struct {
	RSSI, Noise float64
	SNR         float64
	Occupancy   float64
	InBurst     bool
	TxPower     float64
}

// StateNow returns the current hidden state (no measurement jitter);
// the Figure 7 signals plot and tests use it.
func (c *Channel) StateNow() State {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.advanceTo(c.timeNow())
	r, n := c.rssiLocked(), c.noiseLocked()
	return State{
		RSSI: r, Noise: n, SNR: r - n,
		Occupancy: c.occupancyLocked(), InBurst: c.inBurst, TxPower: c.txPower,
	}
}

// SetTxPower sets the WAP transmit power in dBm, clamped to [0, 20] —
// the programmable actuator of the paper's scriptable tool.
func (c *Channel) SetTxPower(dbm float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.advanceTo(c.timeNow())
	if dbm < 0 {
		dbm = 0
	}
	if dbm > 20 {
		dbm = 20
	}
	c.txPower = dbm
}

// TxPower returns the current transmit power.
func (c *Channel) TxPower() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.txPower
}

// AddLoad adds delta to the injected cross-traffic occupancy (use a
// negative delta when a download completes).
func (c *Channel) AddLoad(delta float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.advanceTo(c.timeNow())
	c.load += delta
	if c.load < 0 {
		c.load = 0
	}
}

// Load returns the injected cross-traffic occupancy.
func (c *Channel) Load() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.load
}

// SampleOneWay implements netsim.PathModel for the wireless hop.
func (c *Channel) SampleOneWay(now time.Duration, _ netsim.Direction) (time.Duration, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.advanceTo(now)

	snr := c.rssiLocked() - c.noiseLocked()
	rho := c.occupancyLocked()

	// Loss: SNR-driven corruption (post-L2-retry residual) plus
	// occupancy-driven collision loss.
	pLoss := 0.001
	if snr < 25 {
		pLoss += (25 - snr) * 0.018
	}
	collision := 0.18 * rho * rho
	if c.p.RTSCTS {
		// The handshake largely eliminates data-frame collisions
		// (hidden terminals reserve the medium first).
		collision *= 0.25
	}
	pLoss += collision
	if pLoss > 0.55 {
		pLoss = 0.55
	}
	if c.pktRng.Float64() < pLoss {
		return 0, true
	}

	// Delay: base + per-packet jitter + occupancy queueing + SNR
	// retries + rare heavy spikes when the channel is both busy and
	// noisy (queue buildup behind retransmissions).
	d := c.p.BaseDelay
	d += time.Duration(c.pktRng.ExpFloat64() * float64(2*time.Millisecond))
	if c.p.RTSCTS {
		// RTS/CTS reservation: a fixed handshake plus a variable wait
		// for the medium reservation that grows sharply with
		// contention — the "additional variable delays" of §3.2.
		d += time.Millisecond
		d += time.Duration(c.pktRng.ExpFloat64() * float64(14*time.Millisecond) * rho / (1 - rho))
	}
	if rho > 0.05 {
		mean := float64(c.p.QueueScale) * rho / (1 - rho)
		d += time.Duration(c.pktRng.ExpFloat64() * mean)
	}
	if snr < 22 {
		// Geometric number of MAC retries, harsher at lower SNR.
		pRetry := (22 - snr) * 0.05
		if pRetry > 0.85 {
			pRetry = 0.85
		}
		for retries := 0; retries < 7 && c.pktRng.Float64() < pRetry; retries++ {
			d += time.Duration((0.5 + c.pktRng.Float64()) * float64(c.p.RetrySlot))
		}
	}
	if rho > 0.5 && snr < 22 && c.pktRng.Float64() < 0.22 {
		d += time.Duration(c.pktRng.ExpFloat64() * float64(200*time.Millisecond))
	}
	if d > c.p.MaxDelay {
		return 0, true // tail drop: the queue is finite
	}
	return d, false
}

var (
	_ hints.Provider   = (*Channel)(nil)
	_ netsim.PathModel = (*Channel)(nil)
)
