package wireless

import (
	"testing"
	"time"

	"mntp/internal/hints"
	"mntp/internal/netsim"
	"mntp/internal/stats"
)

// manual is a controllable virtual time source.
type manual struct{ t time.Duration }

func (m *manual) now() time.Duration { return m.t }

func newTestChannel(seed int64) (*Channel, *manual) {
	mt := &manual{}
	return NewChannel(Params{Seed: seed}, mt.now), mt
}

func TestGoodChannelIsFavorable(t *testing.T) {
	ch, mt := newTestChannel(1)
	th := hints.Default()
	favorable := 0
	const n = 600
	for i := 0; i < n; i++ {
		mt.t += time.Second
		if th.Favorable(ch.Hints()) {
			favorable++
		}
	}
	// Default params (full power, ambient load only): the channel
	// should be favorable the large majority of the time.
	if frac := float64(favorable) / n; frac < 0.7 {
		t.Errorf("favorable fraction at full power = %v, want > 0.7", frac)
	}
}

func TestLowPowerClosesGate(t *testing.T) {
	ch, mt := newTestChannel(2)
	ch.SetTxPower(0) // RSSI ≈ −72 + shadow: frequently below −75
	th := hints.Default()
	favorable := 0
	const n = 600
	for i := 0; i < n; i++ {
		mt.t += time.Second
		if th.Favorable(ch.Hints()) {
			favorable++
		}
	}
	if frac := float64(favorable) / n; frac > 0.6 {
		t.Errorf("favorable fraction at zero power = %v, want < 0.6", frac)
	}
}

func TestTxPowerClamped(t *testing.T) {
	ch, _ := newTestChannel(3)
	ch.SetTxPower(99)
	if got := ch.TxPower(); got != 20 {
		t.Errorf("power = %v, want clamp to 20", got)
	}
	ch.SetTxPower(-5)
	if got := ch.TxPower(); got != 0 {
		t.Errorf("power = %v, want clamp to 0", got)
	}
}

func TestLoadChangesDelay(t *testing.T) {
	// Compare mean delay between an idle and a saturated channel.
	meanDelay := func(load float64, seed int64) float64 {
		ch, mt := newTestChannel(seed)
		ch.AddLoad(load)
		var acc stats.Online
		for i := 0; i < 3000; i++ {
			mt.t += 200 * time.Millisecond
			d, lost := ch.SampleOneWay(mt.t, netsim.Uplink)
			if !lost {
				acc.Add(float64(d) / float64(time.Millisecond))
			}
		}
		return acc.Mean()
	}
	idle := meanDelay(0, 4)
	busy := meanDelay(0.8, 4)
	if idle > 15 {
		t.Errorf("idle mean delay = %vms, want < 15ms", idle)
	}
	if busy < 4*idle {
		t.Errorf("busy mean delay %vms not ≫ idle %vms", busy, idle)
	}
}

func TestLoadIncreasesLoss(t *testing.T) {
	lossFrac := func(load float64) float64 {
		ch, mt := newTestChannel(5)
		ch.AddLoad(load)
		lost := 0
		const n = 4000
		for i := 0; i < n; i++ {
			mt.t += 100 * time.Millisecond
			if _, l := ch.SampleOneWay(mt.t, netsim.Uplink); l {
				lost++
			}
		}
		return float64(lost) / n
	}
	if idle, busy := lossFrac(0), lossFrac(0.85); busy < idle+0.05 {
		t.Errorf("loss idle=%v busy=%v, want busy significantly higher", idle, busy)
	}
}

func TestAddLoadFloorsAtZero(t *testing.T) {
	ch, _ := newTestChannel(6)
	ch.AddLoad(0.3)
	ch.AddLoad(-1)
	if got := ch.Load(); got != 0 {
		t.Errorf("load = %v, want 0", got)
	}
}

func TestStateDeterministicPerSeed(t *testing.T) {
	run := func() []float64 {
		ch, mt := newTestChannel(7)
		var out []float64
		for i := 0; i < 100; i++ {
			mt.t += time.Second
			s := ch.StateNow()
			out = append(out, s.RSSI, s.Noise)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("state diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestStateIndependentOfObservationPattern(t *testing.T) {
	// Observing hints frequently must not change the hidden state
	// trajectory.
	final := func(observations int) State {
		ch, mt := newTestChannel(8)
		for i := 0; i < observations; i++ {
			mt.t = time.Duration(i+1) * 5 * time.Minute / time.Duration(observations)
			ch.Hints()
		}
		mt.t = 5 * time.Minute
		return ch.StateNow()
	}
	a, b := final(3), final(300)
	if a.RSSI != b.RSSI || a.Noise != b.Noise || a.InBurst != b.InBurst {
		t.Errorf("state depends on observation pattern: %+v vs %+v", a, b)
	}
}

func TestBurstsOccur(t *testing.T) {
	ch, mt := newTestChannel(9)
	ch.AddLoad(0.6) // bursts arrive faster under load
	bursts := 0
	for i := 0; i < 7200; i++ { // 1 h at 500 ms
		mt.t += 500 * time.Millisecond
		if ch.StateNow().InBurst {
			bursts++
		}
	}
	if bursts == 0 {
		t.Error("no interference bursts in an hour under load")
	}
	// Burst noise must violate the paper's noise gate.
	ch2, mt2 := newTestChannel(10)
	ch2.AddLoad(0.9)
	for i := 0; i < 72000; i++ {
		mt2.t += 500 * time.Millisecond
		if s := ch2.StateNow(); s.InBurst {
			if s.Noise < -75 {
				t.Errorf("burst noise %v too quiet to matter", s.Noise)
			}
			return
		}
	}
	t.Error("no burst found in 10 h under heavy load")
}

func TestDelaySpikesUnderStress(t *testing.T) {
	// A busy, low-power channel must occasionally produce the paper's
	// multi-hundred-ms delays.
	ch, mt := newTestChannel(11)
	ch.SetTxPower(3)
	ch.AddLoad(0.75)
	var maxD time.Duration
	for i := 0; i < 5000; i++ {
		mt.t += 200 * time.Millisecond
		d, lost := ch.SampleOneWay(mt.t, netsim.Uplink)
		if !lost && d > maxD {
			maxD = d
		}
	}
	if maxD < 200*time.Millisecond {
		t.Errorf("max stressed delay = %v, want spikes > 200ms", maxD)
	}
}

func TestHintsCorrelateWithDelays(t *testing.T) {
	// The cross-layer premise: favorable hints should predict smaller
	// delays. Compare mean delays conditioned on the gate.
	ch, mt := newTestChannel(12)
	ch.SetTxPower(6) // marginal power: gate opens and closes
	ch.AddLoad(0.5)
	th := hints.Default()
	var fav, unfav stats.Online
	for i := 0; i < 20000; i++ {
		mt.t += 250 * time.Millisecond
		favorable := th.Favorable(hints.Hints{
			RSSI:  ch.StateNow().RSSI,
			Noise: ch.StateNow().Noise,
		})
		d, lost := ch.SampleOneWay(mt.t, netsim.Uplink)
		if lost {
			continue
		}
		ms := float64(d) / float64(time.Millisecond)
		if favorable {
			fav.Add(ms)
		} else {
			unfav.Add(ms)
		}
	}
	if fav.N() == 0 || unfav.N() == 0 {
		t.Skip("channel never switched regimes under this seed")
	}
	if fav.Mean() >= unfav.Mean() {
		t.Errorf("favorable mean %vms ≥ unfavorable %vms: hints do not predict delay",
			fav.Mean(), unfav.Mean())
	}
}

func TestRTSCTSAddsDelayVariance(t *testing.T) {
	// The §3.2 expectation: RTS/CTS introduces additional variable
	// delays (while reducing collision loss).
	run := func(rtscts bool) (meanMs, lossFrac float64) {
		ch := NewChannel(Params{Seed: 40, RTSCTS: rtscts}, (&manual{}).now)
		ch.AddLoad(0.5)
		var acc stats.Online
		lost := 0
		const n = 8000
		for i := 0; i < n; i++ {
			d, l := ch.SampleOneWay(time.Duration(i)*250*time.Millisecond, netsim.Uplink)
			if l {
				lost++
				continue
			}
			acc.Add(float64(d) / float64(time.Millisecond))
		}
		return acc.Mean(), float64(lost) / n
	}
	meanOff, lossOff := run(false)
	meanOn, lossOn := run(true)
	if meanOn <= meanOff {
		t.Errorf("RTS/CTS mean delay %.2fms not above %.2fms", meanOn, meanOff)
	}
	if lossOn >= lossOff {
		t.Errorf("RTS/CTS loss %.3f not below %.3f", lossOn, lossOff)
	}
}
