//go:build linux

package sysclock

import "testing"

func TestKernelReadState(t *testing.T) {
	st, err := Kernel{}.ReadState()
	if err != nil {
		t.Fatalf("reading kernel state should not require privilege: %v", err)
	}
	// Sanity bounds only: the kernel clamps |freq| to 500 ppm.
	if st.FreqPPM < -500 || st.FreqPPM > 500 {
		t.Errorf("kernel freq = %v ppm, outside ±500", st.FreqPPM)
	}
}
