//go:build linux

package sysclock

import (
	"fmt"
	"syscall"
	"time"
)

// Timex mode bits (linux/timex.h).
const (
	adjOffset    = 0x0001 // ADJ_OFFSET
	adjFrequency = 0x0002 // ADJ_FREQUENCY
	adjNano      = 0x2000 // ADJ_NANO
	staUnsync    = 0x0040 // STA_UNSYNC
)

// freqScale converts between the kernel's 16.16 fixed-point ppm
// frequency field and seconds-per-second.
const freqScale = 65536.0

// Kernel adjusts the real system clock through adjtimex(2). Reading
// state needs no privilege; Step and AdjustFreq need CAP_SYS_TIME and
// return the kernel's error otherwise.
type Kernel struct{}

// ReadState returns the kernel clock discipline state.
func (Kernel) ReadState() (KernelState, error) {
	var tx syscall.Timex
	state, err := syscall.Adjtimex(&tx)
	if err != nil {
		return KernelState{}, fmt.Errorf("sysclock: adjtimex read: %w", err)
	}
	offset := time.Duration(tx.Offset) * time.Microsecond
	if tx.Status&adjNano != 0 {
		offset = time.Duration(tx.Offset) * time.Nanosecond
	}
	return KernelState{
		OffsetRemaining: offset,
		FreqPPM:         float64(tx.Freq) / freqScale,
		Synchronized:    state != 5 /* TIME_ERROR */ && tx.Status&staUnsync == 0,
	}, nil
}

// Step implements Adjuster by requesting a single-shot kernel slew of
// delta (ADJ_OFFSET). The kernel amortizes the shift; large deltas
// exceeding the kernel limit (~0.5 s) are rejected by it.
func (Kernel) Step(delta time.Duration) error {
	tx := syscall.Timex{
		Modes:  adjOffset,
		Offset: delta.Microseconds(),
	}
	if _, err := syscall.Adjtimex(&tx); err != nil {
		return fmt.Errorf("sysclock: adjtimex offset: %w", err)
	}
	return nil
}

// AdjustFreq implements Adjuster by setting the kernel frequency
// correction (ADJ_FREQUENCY).
func (Kernel) AdjustFreq(correction float64) error {
	tx := syscall.Timex{
		Modes: adjFrequency,
		Freq:  int64(correction * 1e6 * freqScale),
	}
	if _, err := syscall.Adjtimex(&tx); err != nil {
		return fmt.Errorf("sysclock: adjtimex freq: %w", err)
	}
	return nil
}
