// Package sysclock abstracts the vendor-specific system-clock
// adjustment calls of Algorithm 1 ("The actual clock update and drift
// correction mechanisms vary, depending on vendor-specific system
// calls available to MNTP", §4.2).
//
// Simulated deployments use clock.Sim through the Adjuster interface;
// real Linux hosts can use the adjtimex(2) backend in
// sysclock_linux.go, which requires CAP_SYS_TIME for mutations but can
// always read kernel discipline state.
package sysclock

import (
	"time"

	"mntp/internal/clock"
)

// Adjuster applies clock corrections: an immediate step and an
// absolute frequency trim. clock.Adjustable satisfies it directly.
type Adjuster interface {
	// Step shifts the clock by delta immediately.
	Step(delta time.Duration) error
	// AdjustFreq sets the frequency correction in seconds per second.
	AdjustFreq(correction float64) error
}

// SimAdjuster adapts a clock.Adjustable (which cannot fail) to the
// fallible Adjuster interface.
type SimAdjuster struct{ Clock clock.Adjustable }

// Step implements Adjuster.
func (s SimAdjuster) Step(delta time.Duration) error {
	s.Clock.Step(delta)
	return nil
}

// AdjustFreq implements Adjuster.
func (s SimAdjuster) AdjustFreq(correction float64) error {
	s.Clock.AdjustFreq(correction)
	return nil
}

// Noop discards all adjustments; measurement-only runs (like the
// paper's experiments "without NTP clock correction") use it.
type Noop struct{}

// Step implements Adjuster.
func (Noop) Step(time.Duration) error { return nil }

// AdjustFreq implements Adjuster.
func (Noop) AdjustFreq(float64) error { return nil }

// KernelState is a snapshot of the kernel clock discipline, as read by
// the platform backend.
type KernelState struct {
	// OffsetRemaining is the residual slew the kernel is applying.
	OffsetRemaining time.Duration
	// FreqPPM is the kernel frequency correction in ppm.
	FreqPPM float64
	// Synchronized reports whether the kernel believes the clock is
	// disciplined.
	Synchronized bool
}
