package sysclock

import (
	"testing"
	"time"

	"mntp/internal/clock"
)

var epoch = time.Date(2016, 11, 14, 0, 0, 0, 0, time.UTC)

func TestSimAdjusterStep(t *testing.T) {
	mt := time.Duration(0)
	sim := clock.NewSim(clock.Config{Seed: 1}, epoch, func() time.Duration { return mt })
	adj := SimAdjuster{Clock: sim}
	if err := adj.Step(-40 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := sim.TrueOffset(); got != -40*time.Millisecond {
		t.Errorf("offset = %v", got)
	}
}

func TestSimAdjusterFreq(t *testing.T) {
	mt := time.Duration(0)
	sim := clock.NewSim(clock.Config{SkewPPM: 30, Seed: 1}, epoch, func() time.Duration { return mt })
	adj := SimAdjuster{Clock: sim}
	if err := adj.AdjustFreq(-30e-6); err != nil {
		t.Fatal(err)
	}
	mt = time.Hour
	if got := sim.TrueOffset(); got < -time.Millisecond || got > time.Millisecond {
		t.Errorf("corrected clock drifted %v", got)
	}
}

func TestNoop(t *testing.T) {
	var n Noop
	if err := n.Step(time.Second); err != nil {
		t.Error(err)
	}
	if err := n.AdjustFreq(1e-6); err != nil {
		t.Error(err)
	}
}
