module mntp

go 1.22
