// Command ntpload drives an open-loop NTP load run against a server
// and emits a JSON capacity report (offered vs achieved rate, loss,
// KoD counts, latency quantiles, interval snapshots). Being
// open-loop, it does not back off when the server saturates — that
// is the point: the capacity cliff shows up as queueing delay and
// loss instead of being hidden by generator back-pressure.
//
// Usage:
//
//	ntpload -target 127.0.0.1:11123 [-rate 10000] [-duration 10s]
//	        [-senders 4] [-arrival poisson] [-timeout 1s]
//	        [-population 0] [-interval 1s] [-version 4] [-seed 1]
//	        [-json -] [-json-out report.json]
//	        [-nts host:4460] [-nts-ca ca.pem | -nts-insecure]
//	        [-nts-sessions 0]
//
// Example capacity run against a 2-shard local server:
//
//	ntpserver -listen 127.0.0.1:11123 -shards 2 &
//	ntpload -target 127.0.0.1:11123 -rate 50000 -duration 10s -json report.json
//
// With -nts the generator first establishes cookie jars over NTS-KE
// (TLS) against the given key-establishment server, then sends
// authenticated requests — each carrying NTS extension fields sealed
// per request — and verifies every reply. NTS NAKs and verification
// failures appear as their own report fields (kod_nts,
// nts_auth_fail), never mixed into loss. The NTP target stays
// -target: capacity runs aim at a known socket, so the KE server's
// NTP address negotiation is deliberately ignored.
package main

import (
	"crypto/tls"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mntp/internal/loadgen"
	"mntp/internal/ntske"
)

func main() {
	target := flag.String("target", "", "server address host:port (required)")
	rate := flag.Float64("rate", 10000, "offered requests/second across all senders")
	duration := flag.Duration("duration", 10*time.Second, "send phase length")
	senders := flag.Int("senders", 4, "sender goroutines")
	arrival := flag.String("arrival", "poisson", "arrival process: poisson|fixed")
	timeout := flag.Duration("timeout", time.Second, "per-request reply deadline")
	population := flag.Int("population", 0, "simulated client population: distinct 127/8 source addresses (loopback targets; 0 = one source per sender)")
	interval := flag.Duration("interval", time.Second, "interval snapshot period (0 = none)")
	version := flag.Int("version", 4, "NTP version of the requests")
	seed := flag.Int64("seed", 1, "arrival randomness seed")
	jsonOut := flag.String("json", "-", "JSON report destination (- = stdout)")
	jsonFile := flag.String("json-out", "", "also write the JSON report to this file (for BENCH_*.json trajectories and CI)")
	ntsKE := flag.String("nts", "", "NTS-KE server host:port — authenticate the load (NTP target stays -target)")
	ntsCA := flag.String("nts-ca", "", "PEM file with the NTS-KE server's trust root (default: system roots)")
	ntsInsecure := flag.Bool("nts-insecure", false, "skip NTS-KE certificate verification (testing only)")
	ntsSessions := flag.Int("nts-sessions", 0, "independent NTS-KE sessions to establish (0 = one per sender)")
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "ntpload: "+format+"\n", args...)
		os.Exit(2)
	}
	if *target == "" {
		fail("-target is required")
	}
	if *version < 1 || *version > 7 {
		fail("-version %d does not fit the 3-bit field", *version)
	}
	var ntsCfg *loadgen.NTSConfig
	if *ntsKE != "" {
		tlsCfg := &tls.Config{InsecureSkipVerify: *ntsInsecure}
		if *ntsCA != "" {
			pool, err := ntske.RootPool(*ntsCA)
			if err != nil {
				fail("-nts-ca %s: %v", *ntsCA, err)
			}
			tlsCfg.RootCAs = pool
		}
		ntsCfg = &loadgen.NTSConfig{
			KEAddr:    *ntsKE,
			TLSConfig: tlsCfg,
			Sessions:  *ntsSessions,
		}
	} else if *ntsCA != "" || *ntsInsecure || *ntsSessions != 0 {
		fail("-nts-ca/-nts-insecure/-nts-sessions require -nts")
	}

	// An interrupted run emits its partial report (truncated: true)
	// instead of dying with nothing: a long capacity run keeps the
	// measurements it already paid for. A second signal kills the
	// process the default way.
	interrupt := make(chan struct{})
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigCh
		fmt.Fprintln(os.Stderr, "ntpload: interrupted, emitting partial report")
		close(interrupt)
		signal.Stop(sigCh)
	}()

	rep, err := loadgen.Run(loadgen.Config{
		Target:        *target,
		Rate:          *rate,
		Duration:      *duration,
		Senders:       *senders,
		Arrival:       loadgen.Arrival(*arrival),
		Timeout:       *timeout,
		Population:    *population,
		SnapshotEvery: *interval,
		Version:       uint8(*version),
		Seed:          *seed,
		NTS:           ntsCfg,
		Interrupt:     interrupt,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ntpload:", err)
		os.Exit(1)
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "ntpload:", err)
		os.Exit(1)
	}
	out = append(out, '\n')
	if *jsonOut == "-" {
		os.Stdout.Write(out)
	} else if err := os.WriteFile(*jsonOut, out, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "ntpload:", err)
		os.Exit(1)
	}
	if *jsonFile != "" {
		if err := os.WriteFile(*jsonFile, out, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "ntpload:", err)
			os.Exit(1)
		}
	}
	fmt.Fprintln(os.Stderr, rep)
}
