// Command sntp is a simple SNTP query tool over real UDP: it performs
// one or more exchanges with an NTP server and prints the measured
// offset and delay, optionally with the Android- or Windows-Mobile-
// style client behaviours documented in §2 of the paper. The -drop,
// -dup, -corrupt and -kod flags route the exchanges through the
// seeded fault-injection harness, for exercising the retry machinery
// against a healthy server.
//
// With -servers (comma list) the tool instead fans queries out over a
// source pool with bounded parallelism, runs Marzullo selection plus
// cluster pruning over each round, prints the combined offset, and
// dumps per-source health at the end.
//
// Usage:
//
//	sntp [-server host:123] [-n count] [-interval 5s] [-timeout 3s]
//	     [-profile default|android|windowsmobile]
//	     [-drop 0] [-dup 0] [-corrupt 0] [-kod 0] [-faultseed 1]
//	     [-nts [-nts-ca ca.pem | -nts-insecure]]
//	sntp -servers a:123,b:123,c:123 [-parallel 3] [-n count]
//
// With -nts every exchange is authenticated (RFC 8915): -server and
// -servers entries name NTS-KE endpoints (host:4460 style), keys and
// cookies are established over TLS, and the NTP traffic goes to the
// server KE negotiates. Replies that fail verification are rejected
// like any other exchange failure.
package main

import (
	"crypto/tls"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mntp/internal/clock"
	"mntp/internal/exchange"
	"mntp/internal/ntpnet"
	"mntp/internal/ntske"
	"mntp/internal/sntp"
	"mntp/internal/sources"
)

func main() {
	server := flag.String("server", "0.pool.ntp.org:123", "NTP server")
	servers := flag.String("servers", "", "comma-separated server pool: fan out, select, combine (overrides -server/-profile)")
	parallel := flag.Int("parallel", 3, "bound on concurrent pool exchanges")
	count := flag.Int("n", 1, "number of queries (rounds in pool mode)")
	interval := flag.Duration("interval", 5*time.Second, "interval between queries")
	timeout := flag.Duration("timeout", 3*time.Second, "per-exchange reply timeout")
	profile := flag.String("profile", "default", "client profile: default, android, windowsmobile")
	drop := flag.Float64("drop", 0, "fault injection: exchange loss probability")
	dup := flag.Float64("dup", 0, "fault injection: reply duplication probability")
	corrupt := flag.Float64("corrupt", 0, "fault injection: reply bit-flip probability")
	kod := flag.Float64("kod", 0, "fault injection: kiss-of-death probability")
	faultSeed := flag.Int64("faultseed", 1, "fault injection seed")
	ntsOn := flag.Bool("nts", false, "authenticate with NTS: server addresses name NTS-KE endpoints (host:4460 style)")
	ntsCA := flag.String("nts-ca", "", "PEM trust root for the NTS-KE certificate (default: system roots)")
	ntsInsecure := flag.Bool("nts-insecure", false, "skip NTS-KE certificate verification (testing only)")
	flag.Parse()

	var transport exchange.Transport = &ntpnet.Client{Timeout: *timeout}
	var faults *ntpnet.FaultTransport
	if *drop > 0 || *dup > 0 || *corrupt > 0 || *kod > 0 {
		faults = &ntpnet.FaultTransport{
			Inner: transport, Seed: *faultSeed,
			DropProb: *drop, DupProb: *dup, CorruptProb: *corrupt, KoDProb: *kod,
		}
		transport = faults
	}
	if *ntsOn {
		// NTS wraps the fault layer so injected faults exercise the
		// authenticated path end to end.
		tlsCfg := &tls.Config{InsecureSkipVerify: *ntsInsecure}
		if *ntsCA != "" {
			pool, err := ntske.RootPool(*ntsCA)
			if err != nil {
				fmt.Fprintf(os.Stderr, "-nts-ca %s: %v\n", *ntsCA, err)
				os.Exit(2)
			}
			tlsCfg.RootCAs = pool
		}
		transport = &ntske.Transport{Inner: transport, TLSConfig: tlsCfg, KETimeout: *timeout}
	} else if *ntsCA != "" || *ntsInsecure {
		fmt.Fprintln(os.Stderr, "-nts-ca/-nts-insecure require -nts")
		os.Exit(2)
	}

	if *servers != "" {
		runPool(strings.Split(*servers, ","), transport, *parallel, *count, *interval)
		printFaultStats(faults)
		return
	}

	var cfg sntp.Config
	switch *profile {
	case "default":
		cfg = sntp.Config{Server: *server, Retries: 1}
	case "android":
		cfg = sntp.AndroidConfig(*server)
	case "windowsmobile":
		cfg = sntp.WindowsMobileConfig(*server)
	default:
		fmt.Fprintf(os.Stderr, "unknown profile %q\n", *profile)
		os.Exit(2)
	}

	c := sntp.New(clock.System{}, transport, sntp.WallSleeper{}, cfg)
	for i := 0; i < *count; i++ {
		if i > 0 {
			time.Sleep(*interval)
		}
		s, err := c.Query()
		if err != nil {
			fmt.Printf("%s: query failed: %v\n", time.Now().Format(time.RFC3339), err)
			continue
		}
		fmt.Printf("%s: server=%s stratum=%d offset=%+.3fms delay=%.3fms\n",
			time.Now().Format(time.RFC3339), s.Server, s.Stratum,
			s.Offset.Seconds()*1000, s.Delay.Seconds()*1000)
	}
	printFaultStats(faults)
}

// runPool fans count rounds out over the server pool, printing each
// source's outcome and the selected/combined offset per round.
func runPool(list []string, transport exchange.Transport, parallel, count int, interval time.Duration) {
	var clean []string
	for _, s := range list {
		if s = strings.TrimSpace(s); s != "" {
			clean = append(clean, s)
		}
	}
	pool := sources.New(clock.System{}, transport, sources.Config{
		Servers:     clean,
		Parallelism: parallel,
	})
	for i := 0; i < count; i++ {
		if i > 0 {
			time.Sleep(interval)
		}
		res := pool.Round()
		var samples []exchange.Sample
		var idxs []int
		for _, o := range res.Outcomes {
			switch {
			case o.Skipped:
				fmt.Printf("  %-24s held down (kiss-of-death back-off)\n", o.Source)
			case o.KoD:
				fmt.Printf("  %-24s kiss-of-death: %v\n", o.Source, o.Err)
			case o.Err != nil:
				fmt.Printf("  %-24s failed: %v\n", o.Source, o.Err)
			default:
				fmt.Printf("  %-24s offset=%+.3fms delay=%.3fms\n",
					o.Source, o.Sample.Offset.Seconds()*1000, o.Sample.Delay.Seconds()*1000)
				samples = append(samples, o.Sample)
				idxs = append(idxs, o.Index)
			}
		}
		sel := pool.SelectCombine(samples, idxs)
		switch {
		case sel.OK:
			fmt.Printf("%s: combined offset=%+.3fms (survivors=%d falsetickers=%d)\n",
				time.Now().Format(time.RFC3339), sel.Offset.Seconds()*1000,
				len(sel.Survivors), len(sel.Falsetickers))
		case sel.NoConsensus:
			fmt.Printf("%s: no consensus among %d samples\n",
				time.Now().Format(time.RFC3339), len(samples))
		default:
			fmt.Printf("%s: no samples\n", time.Now().Format(time.RFC3339))
		}
	}
	fmt.Printf("pool status:\n%s", sources.FormatStatus(pool.Status()))
}

func printFaultStats(faults *ntpnet.FaultTransport) {
	if faults == nil {
		return
	}
	st := faults.Stats()
	fmt.Printf("faults: exchanges=%d dropped=%d duplicated=%d corrupted=%d kod=%d\n",
		st.Exchanges, st.Dropped, st.Duplicated, st.Corrupted, st.KoDs)
}
