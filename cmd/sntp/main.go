// Command sntp is a simple SNTP query tool over real UDP: it performs
// one or more exchanges with an NTP server and prints the measured
// offset and delay, optionally with the Android- or Windows-Mobile-
// style client behaviours documented in §2 of the paper.
//
// Usage:
//
//	sntp [-server host:123] [-n count] [-interval 5s] [-profile default|android|windowsmobile]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mntp/internal/clock"
	"mntp/internal/ntpnet"
	"mntp/internal/sntp"
)

func main() {
	server := flag.String("server", "0.pool.ntp.org:123", "NTP server")
	count := flag.Int("n", 1, "number of queries")
	interval := flag.Duration("interval", 5*time.Second, "interval between queries")
	profile := flag.String("profile", "default", "client profile: default, android, windowsmobile")
	flag.Parse()

	var cfg sntp.Config
	switch *profile {
	case "default":
		cfg = sntp.Config{Server: *server, Retries: 1}
	case "android":
		cfg = sntp.AndroidConfig(*server)
	case "windowsmobile":
		cfg = sntp.WindowsMobileConfig(*server)
	default:
		fmt.Fprintf(os.Stderr, "unknown profile %q\n", *profile)
		os.Exit(2)
	}

	c := sntp.New(clock.System{}, &ntpnet.Client{Timeout: 3 * time.Second},
		sntp.WallSleeper{}, cfg)
	for i := 0; i < *count; i++ {
		if i > 0 {
			time.Sleep(*interval)
		}
		s, err := c.Query()
		if err != nil {
			fmt.Printf("%s: query failed: %v\n", time.Now().Format(time.RFC3339), err)
			continue
		}
		fmt.Printf("%s: server=%s stratum=%d offset=%+.3fms delay=%.3fms\n",
			time.Now().Format(time.RFC3339), s.Server, s.Stratum,
			s.Offset.Seconds()*1000, s.Delay.Seconds()*1000)
	}
}
