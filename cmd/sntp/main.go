// Command sntp is a simple SNTP query tool over real UDP: it performs
// one or more exchanges with an NTP server and prints the measured
// offset and delay, optionally with the Android- or Windows-Mobile-
// style client behaviours documented in §2 of the paper. The -drop,
// -dup, -corrupt and -kod flags route the exchanges through the
// seeded fault-injection harness, for exercising the retry machinery
// against a healthy server.
//
// Usage:
//
//	sntp [-server host:123] [-n count] [-interval 5s] [-timeout 3s]
//	     [-profile default|android|windowsmobile]
//	     [-drop 0] [-dup 0] [-corrupt 0] [-kod 0] [-faultseed 1]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mntp/internal/clock"
	"mntp/internal/exchange"
	"mntp/internal/ntpnet"
	"mntp/internal/sntp"
)

func main() {
	server := flag.String("server", "0.pool.ntp.org:123", "NTP server")
	count := flag.Int("n", 1, "number of queries")
	interval := flag.Duration("interval", 5*time.Second, "interval between queries")
	timeout := flag.Duration("timeout", 3*time.Second, "per-exchange reply timeout")
	profile := flag.String("profile", "default", "client profile: default, android, windowsmobile")
	drop := flag.Float64("drop", 0, "fault injection: exchange loss probability")
	dup := flag.Float64("dup", 0, "fault injection: reply duplication probability")
	corrupt := flag.Float64("corrupt", 0, "fault injection: reply bit-flip probability")
	kod := flag.Float64("kod", 0, "fault injection: kiss-of-death probability")
	faultSeed := flag.Int64("faultseed", 1, "fault injection seed")
	flag.Parse()

	var cfg sntp.Config
	switch *profile {
	case "default":
		cfg = sntp.Config{Server: *server, Retries: 1}
	case "android":
		cfg = sntp.AndroidConfig(*server)
	case "windowsmobile":
		cfg = sntp.WindowsMobileConfig(*server)
	default:
		fmt.Fprintf(os.Stderr, "unknown profile %q\n", *profile)
		os.Exit(2)
	}

	var transport exchange.Transport = &ntpnet.Client{Timeout: *timeout}
	var faults *ntpnet.FaultTransport
	if *drop > 0 || *dup > 0 || *corrupt > 0 || *kod > 0 {
		faults = &ntpnet.FaultTransport{
			Inner: transport, Seed: *faultSeed,
			DropProb: *drop, DupProb: *dup, CorruptProb: *corrupt, KoDProb: *kod,
		}
		transport = faults
	}

	c := sntp.New(clock.System{}, transport, sntp.WallSleeper{}, cfg)
	for i := 0; i < *count; i++ {
		if i > 0 {
			time.Sleep(*interval)
		}
		s, err := c.Query()
		if err != nil {
			fmt.Printf("%s: query failed: %v\n", time.Now().Format(time.RFC3339), err)
			continue
		}
		fmt.Printf("%s: server=%s stratum=%d offset=%+.3fms delay=%.3fms\n",
			time.Now().Format(time.RFC3339), s.Server, s.Stratum,
			s.Offset.Seconds()*1000, s.Delay.Seconds()*1000)
	}
	if faults != nil {
		st := faults.Stats()
		fmt.Printf("faults: exchanges=%d dropped=%d duplicated=%d corrupted=%d kod=%d\n",
			st.Exchanges, st.Dropped, st.Duplicated, st.Corrupted, st.KoDs)
	}
}
