// Command ntppop runs a population-scale scenario: N simulated
// mobile clients (struct-of-arrays, pooled wireless channels, lazy
// oscillator clocks) driven in virtual time against either simulated
// upstreams or a real loopback server the scenario starts itself.
//
// Usage:
//
//	ntppop -scenario nat [-n 10000] [-seed 1] [-json -] [-json-out report.json]
//	ntppop -list
//
// Scenarios: flashcrowd (overload shedding without a dark interval),
// herd (poll phase-locking vs the jitter fix), nat (10k clients
// behind one source IP vs the per-IP rate limiter), falseticker (a
// liar only a fraction of the population can see), restart (a mid-run
// server restart on pinned ports: invisible to the NTS fleet with a
// persisted keyring, a NAK/re-KE herd without one).
//
// The process exits 1 when the scenario's seeded assertions are
// violated, so CI legs can gate on it directly.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"mntp/internal/population"
)

func main() {
	scenario := flag.String("scenario", "", "scenario to run: "+strings.Join(population.Scenarios(), ", "))
	n := flag.Int("n", 0, "population size (0: the scenario's default)")
	seed := flag.Int64("seed", 1, "scenario seed")
	jsonOut := flag.String("json", "-", "JSON report destination (- = stdout)")
	jsonFile := flag.String("json-out", "", "also write the JSON report to this file")
	list := flag.Bool("list", false, "list scenarios and exit")
	flag.Parse()

	if *list {
		for _, s := range population.Scenarios() {
			fmt.Println(s)
		}
		return
	}
	if *scenario == "" {
		fmt.Fprintf(os.Stderr, "ntppop: -scenario is required (one of %s)\n", strings.Join(population.Scenarios(), ", "))
		os.Exit(2)
	}

	rep, err := population.Run(*scenario, *n, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ntppop:", err)
		os.Exit(2)
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "ntppop:", err)
		os.Exit(1)
	}
	out = append(out, '\n')
	if *jsonOut == "-" {
		os.Stdout.Write(out)
	} else if err := os.WriteFile(*jsonOut, out, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "ntppop:", err)
		os.Exit(1)
	}
	if *jsonFile != "" {
		if err := os.WriteFile(*jsonFile, out, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "ntppop:", err)
			os.Exit(1)
		}
	}
	if !rep.Pass {
		fmt.Fprintf(os.Stderr, "ntppop: scenario %s FAILED: %s\n", rep.Scenario, strings.Join(rep.Violations, "; "))
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "ntppop: scenario %s ok (n=%d seed=%d served=%d/%d)\n",
		rep.Scenario, rep.N, rep.Seed, rep.ServedClients, rep.N)
}
