// Command ntpserver runs a standalone NTP/SNTP server over UDP,
// answering mode-3 queries from the system clock (optionally shifted,
// for testing client behaviour against a known-wrong server). A pool
// of worker goroutines shares the socket, abusive clients are
// rate-limited from a bounded table, and the metrics surface
// (served/limited/dropped/malformed counters plus a request-latency
// histogram) is printed periodically.
//
// Usage:
//
//	ntpserver [-listen 127.0.0.1:11123] [-stratum 2] [-shift 0ms]
//	          [-workers 0] [-ratelimit 0] [-ratewindow 1m] [-maxclients 16384]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"mntp/internal/clock"
	"mntp/internal/ntpnet"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:11123", "listen address")
	stratum := flag.Int("stratum", 2, "advertised stratum")
	shift := flag.Duration("shift", 0, "constant error added to served time")
	workers := flag.Int("workers", 0, "serve goroutines sharing the socket (0 = GOMAXPROCS)")
	rateLimit := flag.Int("ratelimit", 0, "max requests per client per window (0 = unlimited)")
	rateWindow := flag.Duration("ratewindow", time.Minute, "rate-limit window")
	maxClients := flag.Int("maxclients", ntpnet.DefaultMaxClients, "rate-limit table bound")
	statsEvery := flag.Duration("stats", 30*time.Second, "metrics print interval")
	flag.Parse()

	var clk clock.Clock = clock.System{}
	if *shift != 0 {
		clk = &clock.Fixed{Base: clock.System{}, Error: *shift}
	}
	srv := ntpnet.NewServer(clk, uint8(*stratum))
	srv.Workers = *workers
	srv.RateLimit = *rateLimit
	srv.RateWindow = *rateWindow
	srv.MaxClients = *maxClients
	addr, err := srv.Listen(*listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("ntpserver listening on %s (stratum %d, shift %v, workers %d, ratelimit %d/%v)\n",
		addr, *stratum, *shift, *workers, *rateLimit, *rateWindow)

	printStats := func() {
		snap := srv.Metrics().Snapshot()
		fmt.Printf("%s rate-table=%d\n", snap, srv.RateTableSize())
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	tick := time.NewTicker(*statsEvery)
	defer tick.Stop()
	for {
		select {
		case <-sig:
			printStats()
			srv.Close()
			return
		case <-tick.C:
			printStats()
		}
	}
}
