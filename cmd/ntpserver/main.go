// Command ntpserver runs a standalone NTP/SNTP server over UDP,
// answering mode-3 queries from the system clock (optionally shifted,
// for testing client behaviour against a known-wrong server). The
// listen path is sharded across SO_REUSEPORT sockets (-shards), each
// shard running its own pool of worker goroutines; abusive clients
// are rate-limited from a bounded table, and the merged metrics
// surface (served/limited/shed/dropped/malformed counters plus a
// request-latency histogram and health state) is printed
// periodically. With -overload the server degrades gracefully under
// offered load beyond capacity: it sheds new flows with RATE kisses
// once reply sojourn exceeds -shed-target for a sustained
// -shed-interval, and drops before parsing when fully overloaded,
// so the clients it does answer are answered with fresh timestamps.
// Workers respawn after panics and a watchdog restarts wedged shards.
//
// A multi-shard listen is all-or-nothing: when the full REUSEPORT
// group cannot be bound, the already-bound sockets are closed and the
// server exits 1 rather than silently serving from fewer queues than
// requested.
//
// Usage:
//
//	ntpserver [-listen 127.0.0.1:11123] [-stratum 2] [-shift 0ms]
//	          [-shards 1] [-workers 0] [-ratelimit 0] [-ratewindow 1m]
//	          [-maxclients 16384] [-stats 30s] [-overload]
//	          [-shed-target 5ms] [-shed-interval 100ms] [-watchdog 1s]
//	          [-nts] [-nts-listen host:4460] [-nts-cert c.pem -nts-key k.pem]
//	          [-nts-cert-out cert.pem] [-nts-rotate 0]
//
// With -nts the server also runs an NTS-KE endpoint (RFC 8915): a TLS
// listener that negotiates keys and hands out cookies sealed by a
// rotating key ring, and the UDP path verifies NTS extension fields
// against that same ring — refusing bad authenticators with NTS NAK
// and letting verified requests through Degraded-state shedding.
// Without -nts-cert/-nts-key a self-signed certificate is generated
// at startup; -nts-cert-out writes its PEM so clients can pin it
// (ntpload/mntp/sntp -nts-ca).
package main

import (
	"crypto/tls"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mntp/internal/clock"
	"mntp/internal/ntpnet"
	"mntp/internal/nts"
	"mntp/internal/ntske"
	"mntp/internal/overload"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:11123", "listen address")
	stratum := flag.Int("stratum", 2, "advertised stratum (1..15)")
	shift := flag.Duration("shift", 0, "constant error added to served time")
	shards := flag.Int("shards", 1, "SO_REUSEPORT listen sockets (0 = 1; >1 requires kernel support: partial binds are rejected)")
	workers := flag.Int("workers", 0, "serve goroutines per shard (0 = GOMAXPROCS/shards)")
	rateLimit := flag.Int("ratelimit", 0, "max requests per client per window (0 = unlimited)")
	rateWindow := flag.Duration("ratewindow", time.Minute, "rate-limit window")
	maxClients := flag.Int("maxclients", ntpnet.DefaultMaxClients, "rate-limit table bound")
	statsEvery := flag.Duration("stats", 30*time.Second, "metrics print interval (0 = never)")
	overloadOn := flag.Bool("overload", false, "enable admission control / load shedding")
	shedTarget := flag.Duration("shed-target", 5*time.Millisecond, "overload: reply-sojourn EWMA target (CoDel-style)")
	shedInterval := flag.Duration("shed-interval", 100*time.Millisecond, "overload: sustained excess required before shedding")
	watchdog := flag.Duration("watchdog", time.Second, "watchdog/housekeeping interval (negative = off)")
	ntsOn := flag.Bool("nts", false, "serve NTS: run an NTS-KE endpoint and verify NTS extension fields on the UDP path")
	ntsListen := flag.String("nts-listen", "", "NTS-KE listen address (default: the -listen host on port 4460)")
	ntsCert := flag.String("nts-cert", "", "NTS-KE server certificate PEM (with -nts-key; default: self-signed)")
	ntsKey := flag.String("nts-key", "", "NTS-KE server key PEM")
	ntsCertOut := flag.String("nts-cert-out", "", "write the serving certificate PEM here (for clients to pin)")
	ntsRotate := flag.Duration("nts-rotate", 0, "cookie key rotation period (0 = never); cookies from the last few epochs stay valid")
	flag.Parse()

	// Validate before anything silently truncates: -stratum feeds a
	// uint8 (a 256 would wrap to 0, a kiss-of-death stratum), and
	// negative limits would read as "off" or break table sizing.
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "ntpserver: "+format+"\n", args...)
		os.Exit(2)
	}
	if *stratum < 1 || *stratum > 15 {
		fail("-stratum %d out of range 1..15", *stratum)
	}
	if *rateLimit < 0 {
		fail("-ratelimit %d is negative", *rateLimit)
	}
	if *maxClients < 0 {
		fail("-maxclients %d is negative", *maxClients)
	}
	if *rateWindow < 0 {
		fail("-ratewindow %v is negative", *rateWindow)
	}
	if *workers < 0 {
		fail("-workers %d is negative", *workers)
	}
	if *shards < 0 {
		fail("-shards %d is negative", *shards)
	}
	if *statsEvery < 0 {
		fail("-stats %v is negative", *statsEvery)
	}
	if *shedTarget <= 0 {
		fail("-shed-target %v must be positive", *shedTarget)
	}
	if *shedInterval <= 0 {
		fail("-shed-interval %v must be positive", *shedInterval)
	}
	if (*ntsCert == "") != (*ntsKey == "") {
		fail("-nts-cert and -nts-key must be given together")
	}
	if !*ntsOn && (*ntsListen != "" || *ntsCert != "" || *ntsCertOut != "" || *ntsRotate != 0) {
		fail("-nts-listen/-nts-cert/-nts-cert-out/-nts-rotate require -nts")
	}
	if *ntsRotate < 0 {
		fail("-nts-rotate %v is negative", *ntsRotate)
	}

	var clk clock.Clock = clock.System{}
	if *shift != 0 {
		clk = &clock.Fixed{Base: clock.System{}, Error: *shift}
	}
	srv := ntpnet.NewServer(clk, uint8(*stratum))
	srv.Shards = *shards
	// A multi-shard listen is all-or-nothing: serving from fewer
	// queues than requested would silently halve capacity.
	srv.RequireShards = *shards > 1
	srv.Workers = *workers
	srv.RateLimit = *rateLimit
	srv.RateWindow = *rateWindow
	srv.MaxClients = *maxClients
	srv.WatchdogInterval = *watchdog
	if *overloadOn {
		srv.Overload = &overload.Config{Target: *shedTarget, Interval: *shedInterval}
	}

	// The cookie ring is shared between the UDP verify path and the KE
	// minting path; depth 3 keeps cookies from the last three rotations
	// decryptable, so clients re-supplied every exchange never notice a
	// rotation.
	var ring *nts.KeyRing
	if *ntsOn {
		var err error
		ring, err = nts.NewKeyRing(3)
		if err != nil {
			fail("generating NTS key ring: %v", err)
		}
		srv.NTS = ring
	}

	addr, err := srv.Listen(*listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var ke *ntske.Server
	if *ntsOn {
		host, _, err := net.SplitHostPort(addr.String())
		if err != nil {
			fail("splitting bound address %s: %v", addr, err)
		}
		var cert tls.Certificate
		var certPEM []byte
		if *ntsCert != "" {
			cert, err = tls.LoadX509KeyPair(*ntsCert, *ntsKey)
			if err != nil {
				fail("loading -nts-cert/-nts-key: %v", err)
			}
			if *ntsCertOut != "" {
				certPEM, err = os.ReadFile(*ntsCert)
				if err != nil {
					fail("reading -nts-cert for -nts-cert-out: %v", err)
				}
			}
		} else {
			cert, certPEM, err = ntske.SelfSigned(time.Now(), host)
			if err != nil {
				fail("generating self-signed certificate: %v", err)
			}
		}
		if *ntsCertOut != "" {
			if err := os.WriteFile(*ntsCertOut, certPEM, 0o644); err != nil {
				fail("writing -nts-cert-out: %v", err)
			}
		}
		keListen := *ntsListen
		if keListen == "" {
			keListen = net.JoinHostPort(host, fmt.Sprint(ntske.DefaultPort))
		}
		ke = &ntske.Server{
			Ring:        ring,
			TLSConfig:   &tls.Config{Certificates: []tls.Certificate{cert}},
			NTPHost:     host,
			NTPPort:     addr.Port,
			RotateEvery: *ntsRotate,
		}
		keAddr, err := ke.Listen(keListen)
		if err != nil {
			srv.Close()
			fmt.Fprintln(os.Stderr, "ntpserver: NTS-KE listen:", err)
			os.Exit(1)
		}
		defer ke.Close()
		fmt.Printf("ntpserver NTS-KE listening on %s (rotate %v)\n", keAddr, *ntsRotate)
	}

	fmt.Printf("ntpserver listening on %s (stratum %d, shift %v, shards %d, workers %d, ratelimit %d/%v, overload %v, nts %v)\n",
		addr, *stratum, *shift, srv.NumShards(), *workers, *rateLimit, *rateWindow, *overloadOn, *ntsOn)

	printStats := func() {
		fmt.Printf("%s rate-table=%d\n", srv.Snapshot(), srv.RateTableSize())
	}
	sig := make(chan os.Signal, 1)
	// SIGTERM is what service managers (systemd, docker stop) send;
	// without it the server was killed uncleanly, skipping the final
	// stats snapshot and socket close below.
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	// A zero interval disables periodic stats (time.NewTicker panics
	// on it); the ticker is stopped before shutdown either way.
	var tickC <-chan time.Time
	var tick *time.Ticker
	if *statsEvery > 0 {
		tick = time.NewTicker(*statsEvery)
		tickC = tick.C
	}
	for {
		select {
		case <-sig:
			if tick != nil {
				tick.Stop()
			}
			printStats()
			srv.Close()
			return
		case <-tickC:
			printStats()
		}
	}
}
