// Command ntpserver runs a standalone NTP/SNTP server over UDP,
// answering mode-3 queries from the system clock (optionally shifted,
// for testing client behaviour against a known-wrong server). The
// listen path is sharded across SO_REUSEPORT sockets (-shards), each
// shard running its own pool of worker goroutines; abusive clients
// are rate-limited from a bounded table, and the merged metrics
// surface (served/limited/shed/dropped/malformed counters plus a
// request-latency histogram and health state) is printed
// periodically. With -overload the server degrades gracefully under
// offered load beyond capacity: it sheds new flows with RATE kisses
// once reply sojourn exceeds -shed-target for a sustained
// -shed-interval, and drops before parsing when fully overloaded,
// so the clients it does answer are answered with fresh timestamps.
// Workers respawn after panics and a watchdog restarts wedged shards.
//
// A multi-shard listen is all-or-nothing: when the full REUSEPORT
// group cannot be bound, the already-bound sockets are closed and the
// server exits 1 rather than silently serving from fewer queues than
// requested.
//
// Usage:
//
//	ntpserver [-listen 127.0.0.1:11123] [-stratum 2] [-shift 0ms]
//	          [-shards 1] [-workers 0] [-ratelimit 0] [-ratewindow 1m]
//	          [-maxclients 16384] [-stats 30s] [-overload]
//	          [-shed-target 5ms] [-shed-interval 100ms] [-watchdog 1s]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mntp/internal/clock"
	"mntp/internal/ntpnet"
	"mntp/internal/overload"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:11123", "listen address")
	stratum := flag.Int("stratum", 2, "advertised stratum (1..15)")
	shift := flag.Duration("shift", 0, "constant error added to served time")
	shards := flag.Int("shards", 1, "SO_REUSEPORT listen sockets (0 = 1; >1 requires kernel support: partial binds are rejected)")
	workers := flag.Int("workers", 0, "serve goroutines per shard (0 = GOMAXPROCS/shards)")
	rateLimit := flag.Int("ratelimit", 0, "max requests per client per window (0 = unlimited)")
	rateWindow := flag.Duration("ratewindow", time.Minute, "rate-limit window")
	maxClients := flag.Int("maxclients", ntpnet.DefaultMaxClients, "rate-limit table bound")
	statsEvery := flag.Duration("stats", 30*time.Second, "metrics print interval (0 = never)")
	overloadOn := flag.Bool("overload", false, "enable admission control / load shedding")
	shedTarget := flag.Duration("shed-target", 5*time.Millisecond, "overload: reply-sojourn EWMA target (CoDel-style)")
	shedInterval := flag.Duration("shed-interval", 100*time.Millisecond, "overload: sustained excess required before shedding")
	watchdog := flag.Duration("watchdog", time.Second, "watchdog/housekeeping interval (negative = off)")
	flag.Parse()

	// Validate before anything silently truncates: -stratum feeds a
	// uint8 (a 256 would wrap to 0, a kiss-of-death stratum), and
	// negative limits would read as "off" or break table sizing.
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "ntpserver: "+format+"\n", args...)
		os.Exit(2)
	}
	if *stratum < 1 || *stratum > 15 {
		fail("-stratum %d out of range 1..15", *stratum)
	}
	if *rateLimit < 0 {
		fail("-ratelimit %d is negative", *rateLimit)
	}
	if *maxClients < 0 {
		fail("-maxclients %d is negative", *maxClients)
	}
	if *rateWindow < 0 {
		fail("-ratewindow %v is negative", *rateWindow)
	}
	if *workers < 0 {
		fail("-workers %d is negative", *workers)
	}
	if *shards < 0 {
		fail("-shards %d is negative", *shards)
	}
	if *statsEvery < 0 {
		fail("-stats %v is negative", *statsEvery)
	}
	if *shedTarget <= 0 {
		fail("-shed-target %v must be positive", *shedTarget)
	}
	if *shedInterval <= 0 {
		fail("-shed-interval %v must be positive", *shedInterval)
	}

	var clk clock.Clock = clock.System{}
	if *shift != 0 {
		clk = &clock.Fixed{Base: clock.System{}, Error: *shift}
	}
	srv := ntpnet.NewServer(clk, uint8(*stratum))
	srv.Shards = *shards
	// A multi-shard listen is all-or-nothing: serving from fewer
	// queues than requested would silently halve capacity.
	srv.RequireShards = *shards > 1
	srv.Workers = *workers
	srv.RateLimit = *rateLimit
	srv.RateWindow = *rateWindow
	srv.MaxClients = *maxClients
	srv.WatchdogInterval = *watchdog
	if *overloadOn {
		srv.Overload = &overload.Config{Target: *shedTarget, Interval: *shedInterval}
	}
	addr, err := srv.Listen(*listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("ntpserver listening on %s (stratum %d, shift %v, shards %d, workers %d, ratelimit %d/%v, overload %v)\n",
		addr, *stratum, *shift, srv.NumShards(), *workers, *rateLimit, *rateWindow, *overloadOn)

	printStats := func() {
		fmt.Printf("%s rate-table=%d\n", srv.Snapshot(), srv.RateTableSize())
	}
	sig := make(chan os.Signal, 1)
	// SIGTERM is what service managers (systemd, docker stop) send;
	// without it the server was killed uncleanly, skipping the final
	// stats snapshot and socket close below.
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	// A zero interval disables periodic stats (time.NewTicker panics
	// on it); the ticker is stopped before shutdown either way.
	var tickC <-chan time.Time
	var tick *time.Ticker
	if *statsEvery > 0 {
		tick = time.NewTicker(*statsEvery)
		tickC = tick.C
	}
	for {
		select {
		case <-sig:
			if tick != nil {
				tick.Stop()
			}
			printStats()
			srv.Close()
			return
		case <-tickC:
			printStats()
		}
	}
}
