// Command ntpserver runs a standalone NTP/SNTP server over UDP,
// answering mode-3 queries from the system clock (optionally shifted,
// for testing client behaviour against a known-wrong server). The
// listen path is sharded across SO_REUSEPORT sockets (-shards), each
// shard running its own pool of worker goroutines; abusive clients
// are rate-limited from a bounded table, and the merged metrics
// surface (served/limited/shed/dropped/malformed counters plus a
// request-latency histogram and health state) is printed
// periodically. With -overload the server degrades gracefully under
// offered load beyond capacity: it sheds new flows with RATE kisses
// once reply sojourn exceeds -shed-target for a sustained
// -shed-interval, and drops before parsing when fully overloaded,
// so the clients it does answer are answered with fresh timestamps.
// Workers respawn after panics and a watchdog restarts wedged shards.
//
// A multi-shard listen is all-or-nothing: when the full REUSEPORT
// group cannot be bound, the already-bound sockets are closed and the
// server exits 1 rather than silently serving from fewer queues than
// requested.
//
// Usage:
//
//	ntpserver [-listen 127.0.0.1:11123] [-stratum 2] [-shift 0ms]
//	          [-shards 1] [-workers 0] [-ratelimit 0] [-ratewindow 1m]
//	          [-maxclients 16384] [-stats 30s] [-overload]
//	          [-shed-target 5ms] [-shed-interval 100ms] [-watchdog 1s]
//	          [-drain 5s] [-config server.conf]
//	          [-nts] [-nts-listen host:4460] [-nts-cert c.pem -nts-key k.pem]
//	          [-nts-cert-out cert.pem] [-nts-rotate 0]
//	          [-nts-state ring.state -nts-state-key ring.key]
//
// With -nts the server also runs an NTS-KE endpoint (RFC 8915): a TLS
// listener that negotiates keys and hands out cookies sealed by a
// rotating key ring, and the UDP path verifies NTS extension fields
// against that same ring — refusing bad authenticators with NTS NAK
// and letting verified requests through Degraded-state shedding.
// Without -nts-cert/-nts-key a self-signed certificate is generated
// at startup; -nts-cert-out writes its PEM so clients can pin it
// (ntpload/mntp/sntp -nts-ca).
//
// Lifecycle: SIGTERM/SIGINT drain gracefully — new datagrams stop
// being admitted, in-flight requests are answered, sockets close only
// after the drain or the -drain deadline (0 drains nothing: the old
// immediate close). SIGHUP reloads live: the -config file (key=value:
// stratum, ratelimit, ratewindow, maxclients, shed-target,
// shed-interval) is re-read and applied without dropping a socket,
// the NTS certificate is rotated (self-signed regenerated, or
// -nts-cert/-nts-key re-read from disk), -nts-cert-out is rewritten,
// and the worker pools are recycled one shard at a time under load.
// With -nts-state the cookie ring is persisted (sealed under the key
// in -nts-state-key, created on first run) and restored on restart,
// so outstanding cookies survive and the fleet never sees a restart
// as an NTS NAK storm.
package main

import (
	"bufio"
	"context"
	"crypto/tls"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"mntp/internal/clock"
	"mntp/internal/ntpnet"
	"mntp/internal/nts"
	"mntp/internal/ntske"
	"mntp/internal/overload"
)

// parseConfig reads a key=value reload file ('#' comments, blank
// lines ignored). Keys mirror the reloadable flags: stratum,
// ratelimit, ratewindow, maxclients, shed-target, shed-interval.
// Unknown keys fail loudly — a typo silently ignored is a config
// change that silently didn't happen.
func parseConfig(path string) (ntpnet.ReloadConfig, error) {
	var r ntpnet.ReloadConfig
	f, err := os.Open(path)
	if err != nil {
		return r, err
	}
	defer f.Close()
	var oc overload.Config
	haveOverload := false
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		key, val, ok := strings.Cut(text, "=")
		if !ok {
			return r, fmt.Errorf("%s:%d: want key=value, got %q", path, line, text)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		bad := func(err error) error {
			return fmt.Errorf("%s:%d: %s: %v", path, line, key, err)
		}
		switch key {
		case "stratum":
			n, err := strconv.Atoi(val)
			if err != nil {
				return r, bad(err)
			}
			if n < 1 || n > 15 {
				return r, fmt.Errorf("%s:%d: stratum %d out of range 1..15", path, line, n)
			}
			r.Stratum = uint8(n)
		case "ratelimit":
			n, err := strconv.Atoi(val)
			if err != nil {
				return r, bad(err)
			}
			r.RateLimit = &n
		case "ratewindow":
			d, err := time.ParseDuration(val)
			if err != nil {
				return r, bad(err)
			}
			r.RateWindow = d
		case "maxclients":
			n, err := strconv.Atoi(val)
			if err != nil {
				return r, bad(err)
			}
			r.MaxClients = n
		case "shed-target":
			d, err := time.ParseDuration(val)
			if err != nil {
				return r, bad(err)
			}
			oc.Target = d
			haveOverload = true
		case "shed-interval":
			d, err := time.ParseDuration(val)
			if err != nil {
				return r, bad(err)
			}
			oc.Interval = d
			haveOverload = true
		default:
			return r, fmt.Errorf("%s:%d: unknown key %q", path, line, key)
		}
	}
	if err := sc.Err(); err != nil {
		return r, err
	}
	if haveOverload {
		r.Overload = &oc
	}
	return r, nil
}

func main() {
	listen := flag.String("listen", "127.0.0.1:11123", "listen address")
	stratum := flag.Int("stratum", 2, "advertised stratum (1..15)")
	shift := flag.Duration("shift", 0, "constant error added to served time")
	shards := flag.Int("shards", 1, "SO_REUSEPORT listen sockets (0 = 1; >1 requires kernel support: partial binds are rejected)")
	workers := flag.Int("workers", 0, "serve goroutines per shard (0 = GOMAXPROCS/shards)")
	rateLimit := flag.Int("ratelimit", 0, "max requests per client per window (0 = unlimited)")
	rateWindow := flag.Duration("ratewindow", time.Minute, "rate-limit window")
	maxClients := flag.Int("maxclients", ntpnet.DefaultMaxClients, "rate-limit table bound")
	statsEvery := flag.Duration("stats", 30*time.Second, "metrics print interval (0 = never)")
	overloadOn := flag.Bool("overload", false, "enable admission control / load shedding")
	shedTarget := flag.Duration("shed-target", 5*time.Millisecond, "overload: reply-sojourn EWMA target (CoDel-style)")
	shedInterval := flag.Duration("shed-interval", 100*time.Millisecond, "overload: sustained excess required before shedding")
	watchdog := flag.Duration("watchdog", time.Second, "watchdog/housekeeping interval (negative = off)")
	drain := flag.Duration("drain", 5*time.Second, "graceful-drain deadline on SIGTERM/SIGINT (0 = close immediately)")
	configPath := flag.String("config", "", "key=value config file applied on SIGHUP (stratum, ratelimit, ratewindow, maxclients, shed-target, shed-interval)")
	ntsOn := flag.Bool("nts", false, "serve NTS: run an NTS-KE endpoint and verify NTS extension fields on the UDP path")
	ntsListen := flag.String("nts-listen", "", "NTS-KE listen address (default: the -listen host on port 4460)")
	ntsCert := flag.String("nts-cert", "", "NTS-KE server certificate PEM (with -nts-key; default: self-signed)")
	ntsKey := flag.String("nts-key", "", "NTS-KE server key PEM")
	ntsCertOut := flag.String("nts-cert-out", "", "write the serving certificate PEM here (for clients to pin)")
	ntsRotate := flag.Duration("nts-rotate", 0, "cookie key rotation period (0 = never); cookies from the last few epochs stay valid")
	ntsState := flag.String("nts-state", "", "persist the cookie ring here (sealed; restored on restart so outstanding cookies survive)")
	ntsStateKey := flag.String("nts-state-key", "", "file holding the hex ring-sealing key (created 0600 on first run; required with -nts-state)")
	flag.Parse()

	// Validate before anything silently truncates: -stratum feeds a
	// uint8 (a 256 would wrap to 0, a kiss-of-death stratum), and
	// negative limits would read as "off" or break table sizing.
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "ntpserver: "+format+"\n", args...)
		os.Exit(2)
	}
	if *stratum < 1 || *stratum > 15 {
		fail("-stratum %d out of range 1..15", *stratum)
	}
	if *rateLimit < 0 {
		fail("-ratelimit %d is negative", *rateLimit)
	}
	if *maxClients < 0 {
		fail("-maxclients %d is negative", *maxClients)
	}
	if *rateWindow < 0 {
		fail("-ratewindow %v is negative", *rateWindow)
	}
	if *workers < 0 {
		fail("-workers %d is negative", *workers)
	}
	if *shards < 0 {
		fail("-shards %d is negative", *shards)
	}
	if *statsEvery < 0 {
		fail("-stats %v is negative", *statsEvery)
	}
	if *shedTarget <= 0 {
		fail("-shed-target %v must be positive", *shedTarget)
	}
	if *shedInterval <= 0 {
		fail("-shed-interval %v must be positive", *shedInterval)
	}
	if (*ntsCert == "") != (*ntsKey == "") {
		fail("-nts-cert and -nts-key must be given together")
	}
	if !*ntsOn && (*ntsListen != "" || *ntsCert != "" || *ntsCertOut != "" || *ntsRotate != 0 || *ntsState != "") {
		fail("-nts-listen/-nts-cert/-nts-cert-out/-nts-rotate/-nts-state require -nts")
	}
	if *ntsRotate < 0 {
		fail("-nts-rotate %v is negative", *ntsRotate)
	}
	if (*ntsState == "") != (*ntsStateKey == "") {
		fail("-nts-state and -nts-state-key must be given together")
	}
	if *drain < 0 {
		fail("-drain %v is negative", *drain)
	}
	var startupCfg *ntpnet.ReloadConfig
	if *configPath != "" {
		// Parse at startup, not at the first SIGHUP: a broken file
		// should stop the deploy, not surface hours later. The parsed
		// config is applied once the server is listening, so the file
		// governs from the first request — SIGHUP re-reads the same
		// file, keeping flags as defaults the file overrides.
		rc, err := parseConfig(*configPath)
		if err != nil {
			fail("-config: %v", err)
		}
		startupCfg = &rc
	}

	var clk clock.Clock = clock.System{}
	if *shift != 0 {
		clk = &clock.Fixed{Base: clock.System{}, Error: *shift}
	}
	srv := ntpnet.NewServer(clk, uint8(*stratum))
	srv.Shards = *shards
	// A multi-shard listen is all-or-nothing: serving from fewer
	// queues than requested would silently halve capacity.
	srv.RequireShards = *shards > 1
	srv.Workers = *workers
	srv.RateLimit = *rateLimit
	srv.RateWindow = *rateWindow
	srv.MaxClients = *maxClients
	srv.WatchdogInterval = *watchdog
	if *overloadOn {
		srv.Overload = &overload.Config{Target: *shedTarget, Interval: *shedInterval}
	}

	// The cookie ring is shared between the UDP verify path and the KE
	// minting path; depth 3 keeps cookies from the last three rotations
	// decryptable, so clients re-supplied every exchange never notice a
	// rotation. With -nts-state the ring is restored from its last
	// checkpoint, so a restart keeps decrypting the fleet's outstanding
	// cookies instead of NAKing them all into a re-KE storm; a missing
	// or corrupt state file degrades to a fresh ring (cold start).
	var ring *nts.KeyRing
	var stateKey []byte
	if *ntsOn {
		var err error
		if *ntsState != "" {
			stateKey, err = nts.LoadOrCreateMasterKey(*ntsStateKey)
			if err != nil {
				fail("%v", err)
			}
			var loaded bool
			ring, loaded, err = nts.LoadOrNewKeyRing(*ntsState, stateKey, 3)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ntpserver: NTS state %s unusable (%v): cold start\n", *ntsState, err)
			}
			if loaded {
				fmt.Printf("ntpserver NTS ring restored from %s (epoch %d)\n", *ntsState, ring.Epoch())
			}
		} else {
			ring, err = nts.NewKeyRing(3)
			if err != nil {
				fail("generating NTS key ring: %v", err)
			}
		}
		srv.NTS = ring
	}

	addr, err := srv.Listen(*listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if startupCfg != nil {
		srv.Reload(*startupCfg)
	}

	var ke *ntske.Server
	// rotateCert is the SIGHUP certificate-rotation hook: regenerate
	// (self-signed) or re-read (-nts-cert) the serving certificate,
	// swap it into the live KE listener, and republish -nts-cert-out.
	var rotateCert func() error
	if *ntsOn {
		host, _, err := net.SplitHostPort(addr.String())
		if err != nil {
			fail("splitting bound address %s: %v", addr, err)
		}
		var cert tls.Certificate
		var certPEM []byte
		if *ntsCert != "" {
			cert, err = tls.LoadX509KeyPair(*ntsCert, *ntsKey)
			if err != nil {
				fail("loading -nts-cert/-nts-key: %v", err)
			}
			if *ntsCertOut != "" {
				certPEM, err = os.ReadFile(*ntsCert)
				if err != nil {
					fail("reading -nts-cert for -nts-cert-out: %v", err)
				}
			}
		} else {
			cert, certPEM, err = ntske.SelfSigned(time.Now(), host)
			if err != nil {
				fail("generating self-signed certificate: %v", err)
			}
		}
		if *ntsCertOut != "" {
			if err := os.WriteFile(*ntsCertOut, certPEM, 0o644); err != nil {
				fail("writing -nts-cert-out: %v", err)
			}
		}
		keListen := *ntsListen
		if keListen == "" {
			keListen = net.JoinHostPort(host, fmt.Sprint(ntske.DefaultPort))
		}
		ke = &ntske.Server{
			Ring:        ring,
			TLSConfig:   &tls.Config{Certificates: []tls.Certificate{cert}},
			NTPHost:     host,
			NTPPort:     addr.Port,
			RotateEvery: *ntsRotate,
			StatePath:   *ntsState,
			StateKey:    stateKey,
		}
		keAddr, err := ke.Listen(keListen)
		if err != nil {
			srv.Close()
			fmt.Fprintln(os.Stderr, "ntpserver: NTS-KE listen:", err)
			os.Exit(1)
		}
		defer ke.Close()
		// The first checkpoint lands immediately, not at the first
		// rotation: a crash before any rotation must still restart
		// warm.
		if err := ke.Checkpoint(); err != nil {
			fmt.Fprintln(os.Stderr, "ntpserver: NTS state checkpoint:", err)
		}
		rotateCert = func() error {
			var next tls.Certificate
			var nextPEM []byte
			var err error
			if *ntsCert != "" {
				// Operator-managed cert: re-read the files — this is
				// how a renewed certificate is deployed without a
				// restart.
				next, err = tls.LoadX509KeyPair(*ntsCert, *ntsKey)
				if err != nil {
					return fmt.Errorf("reloading -nts-cert/-nts-key: %w", err)
				}
				if *ntsCertOut != "" {
					nextPEM, err = os.ReadFile(*ntsCert)
					if err != nil {
						return fmt.Errorf("reading -nts-cert: %w", err)
					}
				}
			} else {
				next, nextPEM, err = ntske.SelfSigned(time.Now(), host)
				if err != nil {
					return fmt.Errorf("regenerating self-signed certificate: %w", err)
				}
			}
			ke.SetCertificate(next)
			if *ntsCertOut != "" {
				if err := os.WriteFile(*ntsCertOut, nextPEM, 0o644); err != nil {
					return fmt.Errorf("rewriting -nts-cert-out: %w", err)
				}
			}
			return nil
		}
		fmt.Printf("ntpserver NTS-KE listening on %s (rotate %v)\n", keAddr, *ntsRotate)
	}

	fmt.Printf("ntpserver listening on %s (stratum %d, shift %v, shards %d, workers %d, ratelimit %d/%v, overload %v, nts %v)\n",
		addr, *stratum, *shift, srv.NumShards(), *workers, *rateLimit, *rateWindow, *overloadOn, *ntsOn)

	printStats := func() {
		fmt.Printf("%s rate-table=%d\n", srv.Snapshot(), srv.RateTableSize())
	}
	sig := make(chan os.Signal, 1)
	// SIGTERM is what service managers (systemd, docker stop) send;
	// without it the server was killed uncleanly, skipping the drain,
	// the final stats snapshot and the socket close below.
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)

	// reload is the SIGHUP path: apply the -config file live (no
	// socket drop, established rate-limit budgets kept), rotate the
	// NTS certificate, then recycle the worker pools one shard at a
	// time under load. Errors are reported and the server keeps its
	// previous configuration — a bad reload must never take serving
	// down.
	reload := func() {
		if *configPath != "" {
			rc, err := parseConfig(*configPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ntpserver: reload:", err)
				return
			}
			srv.Reload(rc)
		}
		if rotateCert != nil {
			if err := rotateCert(); err != nil {
				fmt.Fprintln(os.Stderr, "ntpserver: reload:", err)
				return
			}
		}
		srv.Recycle()
		fmt.Printf("ntpserver reloaded (config %q, nts cert rotated %v)\n", *configPath, rotateCert != nil)
	}

	// A zero interval disables periodic stats (time.NewTicker panics
	// on it); the ticker is stopped before shutdown either way.
	var tickC <-chan time.Time
	var tick *time.Ticker
	if *statsEvery > 0 {
		tick = time.NewTicker(*statsEvery)
		tickC = tick.C
	}
	for {
		select {
		case <-sig:
			if tick != nil {
				tick.Stop()
			}
			if *drain > 0 {
				// Graceful drain: answer everything already admitted,
				// then close. On deadline expiry Shutdown degrades to
				// the old immediate-close behavior by itself.
				ctx, cancel := context.WithTimeout(context.Background(), *drain)
				if ke != nil {
					if err := ke.Shutdown(ctx); err != nil {
						fmt.Fprintln(os.Stderr, "ntpserver: NTS-KE drain:", err)
					}
				}
				if err := srv.Shutdown(ctx); err != nil {
					fmt.Fprintln(os.Stderr, "ntpserver: drain:", err)
				}
				cancel()
			} else {
				if ke != nil {
					ke.Close()
				}
				srv.Close()
			}
			if ke != nil {
				// Final checkpoint after the drain: the persisted ring
				// is exactly what this process last served with.
				if err := ke.Checkpoint(); err != nil {
					fmt.Fprintln(os.Stderr, "ntpserver: NTS state checkpoint:", err)
				}
			}
			printStats()
			return
		case <-hup:
			reload()
		case <-tickC:
			printStats()
		}
	}
}
