// Command ntpserver runs a standalone NTP/SNTP server over UDP,
// answering mode-3 queries from the system clock (optionally shifted,
// for testing client behaviour against a known-wrong server).
//
// Usage:
//
//	ntpserver [-listen 127.0.0.1:11123] [-stratum 2] [-shift 0ms]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"mntp/internal/clock"
	"mntp/internal/ntpnet"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:11123", "listen address")
	stratum := flag.Int("stratum", 2, "advertised stratum")
	shift := flag.Duration("shift", 0, "constant error added to served time")
	flag.Parse()

	var clk clock.Clock = clock.System{}
	if *shift != 0 {
		clk = &clock.Fixed{Base: clock.System{}, Error: *shift}
	}
	srv := ntpnet.NewServer(clk, uint8(*stratum))
	addr, err := srv.Listen(*listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("ntpserver listening on %s (stratum %d, shift %v)\n", addr, *stratum, *shift)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	tick := time.NewTicker(30 * time.Second)
	defer tick.Stop()
	for {
		select {
		case <-sig:
			fmt.Printf("served %d requests\n", srv.Served())
			srv.Close()
			return
		case <-tick.C:
			fmt.Printf("served %d requests\n", srv.Served())
		}
	}
}
