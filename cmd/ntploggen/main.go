// Command ntploggen generates the synthetic §3.1 dataset: one pcap
// file per NTP server of Table 1, with the paper's client-population
// structure (provider categories, latency distributions, SNTP/NTP
// protocol mix) at a configurable scale.
//
// Usage:
//
//	ntploggen [-dir traces] [-scale 0.0005] [-seed 2016] [-servers SU1,AG1]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mntp/internal/ipasn"
	"mntp/internal/ntplog"
)

func main() {
	dir := flag.String("dir", "traces", "output directory")
	scale := flag.Float64("scale", 1.0/2000, "client-count scale factor")
	seed := flag.Int64("seed", 2016, "generation seed")
	servers := flag.String("servers", "", "comma-separated server IDs (default all 19)")
	flag.Parse()

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	reg := ipasn.NewRegistry()

	want := map[string]bool{}
	for _, id := range strings.Split(*servers, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[id] = true
		}
	}

	for _, prof := range ntplog.Table1Profiles() {
		if len(want) > 0 && !want[prof.ID] {
			continue
		}
		path := filepath.Join(*dir, prof.ID+".pcap")
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		clients, requests, err := ntplog.Generate(f, prof, reg, ntplog.GenConfig{
			Scale: *scale, Seed: *seed,
		})
		cerr := f.Close()
		if err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", prof.ID, err)
			os.Exit(1)
		}
		fmt.Printf("%s: %d clients, %d requests -> %s\n", prof.ID, clients, requests, path)
	}
}
