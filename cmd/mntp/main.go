// Command mntp runs an MNTP client (Algorithm 1 of the paper).
//
// Two transports are supported:
//
//   - sim (default): a complete simulated wireless testbed is built
//     and the client runs in virtual time — useful for demonstration
//     and parameter exploration;
//   - udp: the client runs in wall time against real NTP servers,
//     reading wireless hints from `airport -I` (macOS) or
//     `iwconfig <if>` (Linux) output supplied on a named pipe/file,
//     or treating the channel as always favorable with -hints none.
//
// Usage:
//
//	mntp -transport sim [-duration 1h] [-seed 7]
//	mntp -transport udp -servers 0.pool.ntp.org:123,1.pool.ntp.org:123,2.pool.ntp.org:123 \
//	     [-parallel 3] [-hints airport|iwconfig|none] [-hints-cmd PATH]
//	     [-nts [-nts-ca ca.pem | -nts-insecure]]
//
// With -nts (udp transport) every exchange is authenticated per RFC
// 8915: -server/-servers entries name NTS-KE endpoints (host:4460
// style), keys and cookies are established over TLS, and NTP traffic
// goes to the server each KE negotiates. Unverifiable replies are
// rejected before they reach the synchronization algorithm.
package main

import (
	"crypto/tls"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mntp/internal/core"
	"mntp/internal/driftfile"
	"mntp/internal/exchange"
	"mntp/internal/hints"
	"mntp/internal/netsim"
	"mntp/internal/ntpnet"
	"mntp/internal/ntske"
	"mntp/internal/sntp"
	"mntp/internal/sources"
	"mntp/internal/testbed"
	"mntp/internal/trend"
)

func main() {
	transport := flag.String("transport", "sim", "sim or udp")
	server := flag.String("server", "0.pool.ntp.org:123", "NTP server (udp transport; ignored when -servers is set)")
	servers := flag.String("servers", "", "comma-separated upstream pool (udp transport): warm-up fans out over all, regular phase tracks the top-ranked")
	parallel := flag.Int("parallel", 3, "bound on concurrent fan-out exchanges (udp transport)")
	exchTimeout := flag.Duration("exchange-timeout", 0, "per-exchange deadline enforced by the pool (0: transport timeout only)")
	hintsMode := flag.String("hints", "none", "udp transport hint source: airport, iwconfig or none")
	hintsCmd := flag.String("hints-cmd", "", "command printing airport/iwconfig output (default: the utility itself)")
	iface := flag.String("iface", "wlan0", "wireless interface for iwconfig")
	drift := flag.String("driftfile", "", "persist the measured drift estimate here (ntpd-compatible format)")
	duration := flag.Duration("duration", time.Hour, "how long to run")
	seed := flag.Int64("seed", 7, "simulation seed")
	warmup := flag.Duration("warmup", 10*time.Minute, "warmupPeriod")
	warmupWait := flag.Duration("warmup-wait", 15*time.Second, "warmupWaitTime")
	regularWait := flag.Duration("regular-wait", 5*time.Minute, "regularWaitTime")
	reset := flag.Duration("reset", 4*time.Hour, "resetPeriod")
	stepThreshold := flag.Duration("step-threshold", 128*time.Millisecond, "offset beyond which the clock is stepped rather than slewed")
	panicThreshold := flag.Duration("panic-threshold", 10*time.Second, "offset beyond which a correction is refused once synchronized (negative disables)")
	holdoverMax := flag.Duration("holdover-max", time.Hour, "how long holdover retains the sync state during a blackout")
	estimator := flag.String("estimator", "lsq", "trend estimator for the offset filter: lsq, theilsen or lad")
	estimatorWindow := flag.Int("estimator-window", 0, "sample window for the robust estimators (0: default, 32)")
	pollJitter := flag.Float64("poll-jitter", core.DefaultPollJitter, "regular-phase poll randomization fraction, 0 disables (fleet de-phasing)")
	jitterSeed := flag.Int64("jitter-seed", 0, "poll-jitter rng seed (0: derived from pid and start time)")
	ntsOn := flag.Bool("nts", false, "authenticate with NTS (udp transport): server addresses name NTS-KE endpoints (host:4460 style)")
	ntsCA := flag.String("nts-ca", "", "PEM trust root for the NTS-KE certificate (default: system roots)")
	ntsInsecure := flag.Bool("nts-insecure", false, "skip NTS-KE certificate verification (testing only)")
	flag.Parse()

	kind, err := trend.ParseKind(*estimator)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(2)
	}

	params := core.DefaultParams(testbed.PoolName)
	params.WarmupPeriod = *warmup
	params.WarmupWaitTime = *warmupWait
	params.RegularWaitTime = *regularWait
	params.ResetPeriod = *reset
	params.StepThreshold = *stepThreshold
	params.PanicThreshold = *panicThreshold
	params.HoldoverMax = *holdoverMax
	params.Estimator = kind
	params.EstimatorWindow = *estimatorWindow
	if *pollJitter <= 0 {
		params.DisablePollJitter = true
	} else {
		params.PollJitter = *pollJitter
	}
	if *jitterSeed != 0 {
		params.JitterSeed = *jitterSeed
	} else {
		// Seed per process so a fleet of devices launched from the same
		// image still de-phases (the whole point of the jitter).
		params.JitterSeed = time.Now().UnixNano() ^ int64(os.Getpid())<<32
	}

	switch *transport {
	case "sim":
		if *ntsOn {
			fmt.Fprintln(os.Stderr, "-nts requires -transport udp")
			os.Exit(2)
		}
		runSim(*seed, params, *duration)
	case "udp":
		list := splitServers(*servers)
		if len(list) == 0 {
			list = []string{*server}
		}
		params.Parallelism = *parallel
		params.ExchangeTimeout = *exchTimeout
		var tr exchange.Transport = &ntpnet.Client{Timeout: 3 * time.Second}
		if *ntsOn {
			tlsCfg := &tls.Config{InsecureSkipVerify: *ntsInsecure}
			if *ntsCA != "" {
				pool, err := ntske.RootPool(*ntsCA)
				if err != nil {
					fmt.Fprintf(os.Stderr, "-nts-ca %s: %v\n", *ntsCA, err)
					os.Exit(2)
				}
				tlsCfg.RootCAs = pool
			}
			tr = &ntske.Transport{Inner: tr, TLSConfig: tlsCfg}
		} else if *ntsCA != "" || *ntsInsecure {
			fmt.Fprintln(os.Stderr, "-nts-ca/-nts-insecure require -nts")
			os.Exit(2)
		}
		runUDP(list, tr, *hintsMode, *hintsCmd, *iface, *drift, params, *duration)
	default:
		fmt.Fprintf(os.Stderr, "unknown transport %q\n", *transport)
		os.Exit(2)
	}
}

// splitServers parses the -servers comma list, trimming whitespace and
// dropping empty entries.
func splitServers(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func printEvent(e core.Event) {
	switch e.Kind {
	case core.EventAccepted, core.EventRejected:
		fmt.Printf("%9.1fs %-7s %-12s offset=%8.2fms rssi=%6.1f noise=%6.1f drift=%+.2fppm\n",
			e.Elapsed.Seconds(), e.Phase, e.Kind,
			e.Offset.Seconds()*1000, e.Hints.RSSI, e.Hints.Noise, e.Drift*1e6)
	case core.EventDriftCorrected:
		fmt.Printf("%9.1fs %-7s %-12s drift=%+.2fppm\n",
			e.Elapsed.Seconds(), e.Phase, e.Kind, e.Drift*1e6)
	case core.EventFalseTicker:
		fmt.Printf("%9.1fs %-7s %-12s source=%s offset=%8.2fms\n",
			e.Elapsed.Seconds(), e.Phase, e.Kind, e.Source, e.Offset.Seconds()*1000)
	case core.EventKoD:
		fmt.Printf("%9.1fs %-7s %-12s source=%s (hold-down engaged)\n",
			e.Elapsed.Seconds(), e.Phase, e.Kind, e.Source)
	case core.EventAdjustError:
		fmt.Printf("%9.1fs %-7s %-12s clock adjustment refused by the host\n",
			e.Elapsed.Seconds(), e.Phase, e.Kind)
	case core.EventHoldover:
		fmt.Printf("%9.1fs %-7s %-12s sources dark; free-running on drift=%+.2fppm\n",
			e.Elapsed.Seconds(), e.Phase, e.Kind, e.Drift*1e6)
	case core.EventPanicStep:
		fmt.Printf("%9.1fs %-7s %-12s refused implausible correction of %8.2fms\n",
			e.Elapsed.Seconds(), e.Phase, e.Kind, e.Offset.Seconds()*1000)
	case core.EventResumed:
		fmt.Printf("%9.1fs %-7s %-12s wall clock jumped %8.2fms vs monotonic; re-warming up\n",
			e.Elapsed.Seconds(), e.Phase, e.Kind, e.Offset.Seconds()*1000)
	case core.EventNetworkChanged:
		fmt.Printf("%9.1fs %-7s %-12s path health reset; re-probing\n",
			e.Elapsed.Seconds(), e.Phase, e.Kind)
	}
}

func runSim(seed int64, params core.Params, duration time.Duration) {
	tb := testbed.New(testbed.Config{Seed: seed, Access: testbed.Wireless, Monitor: true})
	fmt.Printf("simulated testbed: pool %s, %d members, seed %d\n",
		testbed.PoolName, len(tb.Members), seed)
	tb.Sched.Go(func(p *netsim.Proc) {
		tr := &netsim.Transport{Net: tb.Net, Proc: p, Clock: tb.TNClock}
		c := core.New(tb.TNClock, nil, tr, tb.Hints, p, params)
		c.OnEvent = printEvent
		c.Run(duration)
		fmt.Printf("pool status:\n%s", sources.FormatStatus(c.PoolStatus()))
	})
	tb.Sched.Run()
	fmt.Printf("done: TN clock true offset at end: %v\n", tb.TNClock.TrueOffset())
}

// wallClock reads the host clock with the monotonic reading stripped
// (Round(0)): time.Time subtraction then measures wall time, so the
// client's wall-vs-monotonic comparison can actually see a suspend or
// an external clock step. clock.System would hand back hybrid
// timestamps whose Sub() silently uses the monotonic reading,
// blinding the detector.
type wallClock struct{}

func (wallClock) Now() time.Time { return time.Now().Round(0) }

// cmdHints shells out to the platform utility and parses its output.
type cmdHints struct {
	argv  []string
	parse func(string) (hints.Hints, error)
	last  hints.Hints
}

func (c *cmdHints) Hints() hints.Hints {
	out, err := exec.Command(c.argv[0], c.argv[1:]...).Output()
	if err != nil {
		return c.last // keep the previous reading on failure
	}
	h, err := c.parse(string(out))
	if err != nil {
		return c.last
	}
	c.last = h
	return h
}

func runUDP(servers []string, transport exchange.Transport, hintsMode, hintsCmd, iface, driftPath string, params core.Params, duration time.Duration) {
	var hp hints.Provider
	switch hintsMode {
	case "airport":
		argv := []string{"/System/Library/PrivateFrameworks/Apple80211.framework/Versions/Current/Resources/airport", "-I"}
		if hintsCmd != "" {
			argv = []string{hintsCmd}
		}
		hp = &cmdHints{argv: argv, parse: hints.ParseAirport}
	case "iwconfig":
		argv := []string{"iwconfig", iface}
		if hintsCmd != "" {
			argv = []string{hintsCmd}
		}
		hp = &cmdHints{argv: argv, parse: hints.ParseIwconfig}
	case "none":
		hp = hints.AlwaysFavorable
	default:
		fmt.Fprintf(os.Stderr, "unknown hints mode %q\n", hintsMode)
		os.Exit(2)
	}

	if len(servers) == 1 {
		// A single upstream keeps the paper's 3-query warm-up by
		// occupying three pool slots (each exchange reaches a random
		// pool member behind the name).
		params.WarmupServers = []string{servers[0], servers[0], servers[0]}
	} else {
		params.WarmupServers = servers
	}
	params.RegularServer = servers[0]
	c := core.New(wallClock{}, nil, transport, hp, sntp.WallSleeper{}, params)
	c.OnEvent = printEvent
	// Suspend/resume detection needs a monotonic reading the wall
	// clock's jumps cannot touch; time.Since reads Go's monotonic
	// clock, which (on Linux with CLOCK_BOOTTIME semantics aside)
	// stands still across a suspend while the wall clock leaps.
	start := time.Now()
	c.Mono = func() time.Duration { return time.Since(start) }
	// SIGHUP is the roaming hook: `kill -HUP` after switching networks
	// resets per-source path health and triggers an immediate
	// re-probe on a jittered backoff.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			c.NetworkChanged()
		}
	}()
	if driftPath != "" {
		if prev, ok, err := driftfile.Load(driftPath); err != nil {
			fmt.Fprintf(os.Stderr, "driftfile: %v\n", err)
		} else if ok {
			fmt.Printf("drift file %s: previously measured %+.3f ppm\n", driftPath, prev*1e6)
		}
	}
	fmt.Printf("MNTP over UDP against %s (hints: %s, parallel %d) for %v — measurement only\n",
		strings.Join(servers, ","), hintsMode, params.Parallelism, duration)
	c.Run(duration)
	fmt.Printf("pool status:\n%s", sources.FormatStatus(c.PoolStatus()))
	if est, ok := c.DriftEstimate(); ok {
		fmt.Printf("measured drift estimate: %+.3f ppm\n", est*1e6)
		if driftPath != "" {
			if err := driftfile.Store(driftPath, est); err != nil {
				fmt.Fprintf(os.Stderr, "driftfile: %v\n", err)
			}
		}
	}
}
