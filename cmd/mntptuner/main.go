// Command mntptuner is the §5.3 MNTP tuner: it collects a logging
// trace on the simulated testbed (or loads one from a file), then
// either evaluates the paper's six Table 2 configurations or runs a
// grid search over the four MNTP parameters, reporting RMSE and
// request counts per configuration.
//
// Usage:
//
//	mntptuner collect [-out trace.json] [-duration 4h] [-seed 53]
//	mntptuner table2  [-trace trace.json]
//	mntptuner search  [-trace trace.json] [-warmup 30,60,120] [-warmup-wait 0.25,1] [-regular-wait 15,30] [-reset 240] [-estimators lsq,theilsen,lad]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"mntp/internal/report"
	"mntp/internal/testbed"
	"mntp/internal/trend"
	"mntp/internal/tuner"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "collect":
		collect(os.Args[2:])
	case "table2":
		table2(os.Args[2:])
	case "search":
		search(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: mntptuner collect|table2|search [flags]")
	os.Exit(2)
}

func collect(args []string) {
	fs := flag.NewFlagSet("collect", flag.ExitOnError)
	out := fs.String("out", "trace.json", "output trace file")
	duration := fs.Duration("duration", 4*time.Hour, "logging duration (virtual)")
	seed := fs.Int64("seed", 53, "testbed seed")
	fs.Parse(args)

	tb := testbed.New(testbed.Config{Seed: *seed, Access: testbed.Wireless, Monitor: true})
	sources := []string{testbed.PoolName, testbed.PoolName, testbed.PoolName}
	tr := tuner.Collect(tb, sources, 5*time.Second, *duration)

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	if err := tr.Write(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("collected %d records over %v -> %s\n", len(tr.Records), *duration, *out)
}

func loadTrace(path string) *tuner.Trace {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	tr, err := tuner.ReadTrace(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return tr
}

func table2(args []string) {
	fs := flag.NewFlagSet("table2", flag.ExitOnError)
	trace := fs.String("trace", "trace.json", "trace file from collect")
	fs.Parse(args)
	tr := loadTrace(*trace)

	t := report.NewTable("Config", "warmup(min)", "warmupWait(min)", "regularWait(min)",
		"reset(min)", "RMSE(ms)", "Requests", "Accepted", "Rejected", "Deferred")
	for _, cfg := range tuner.Table2Configs() {
		res := tuner.Emulate(tr, cfg.Params())
		t.AddRow(cfg.Name, cfg.WarmupMin, cfg.WarmupWaitMin, cfg.RegularWaitMin,
			cfg.ResetMin, res.RMSE, res.Requests, res.Accepted, res.Rejected, res.Deferred)
	}
	fmt.Println(t.String())
}

func parseFloats(s string) []float64 {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad value %q\n", part)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

func search(args []string) {
	fs := flag.NewFlagSet("search", flag.ExitOnError)
	trace := fs.String("trace", "trace.json", "trace file from collect")
	warmup := fs.String("warmup", "30,60,120", "warmupPeriod values (minutes)")
	warmupWait := fs.String("warmup-wait", "0.25,1,5", "warmupWaitTime values (minutes)")
	regularWait := fs.String("regular-wait", "15,30", "regularWaitTime values (minutes)")
	reset := fs.String("reset", "240", "resetPeriod values (minutes)")
	estimators := fs.String("estimators", "lsq", "comma-separated trend estimators to search (lsq,theilsen,lad)")
	top := fs.Int("top", 10, "show the best N configurations")
	fs.Parse(args)
	tr := loadTrace(*trace)

	results := tuner.Search(tr, tuner.SearchSpace{
		WarmupMin:      parseFloats(*warmup),
		WarmupWaitMin:  parseFloats(*warmupWait),
		RegularWaitMin: parseFloats(*regularWait),
		ResetMin:       parseFloats(*reset),
		Estimators:     parseKinds(*estimators),
	})
	if *top > len(results) {
		*top = len(results)
	}
	t := report.NewTable("Rank", "warmup(min)", "warmupWait(min)", "regularWait(min)",
		"reset(min)", "estimator", "RMSE(ms)", "Requests")
	for i := 0; i < *top; i++ {
		r := results[i]
		t.AddRow(i+1,
			r.Params.WarmupPeriod.Minutes(), r.Params.WarmupWaitTime.Minutes(),
			r.Params.RegularWaitTime.Minutes(), r.Params.ResetPeriod.Minutes(),
			string(r.Params.Estimator), r.RMSE, r.Requests)
	}
	fmt.Println(t.String())
}

func parseKinds(s string) []trend.Kind {
	var out []trend.Kind
	for _, part := range strings.Split(s, ",") {
		k, err := trend.ParseKind(strings.TrimSpace(part))
		if err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(2)
		}
		out = append(out, k)
	}
	return out
}
