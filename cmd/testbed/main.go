// Command testbed runs one laboratory scenario (the conditions of
// Figures 4–10 and 12) and prints the resulting offset series summary
// and plot.
//
// Usage:
//
//	testbed [-protocol sntp|mntp] [-access wireless|wired|cellular]
//	        [-correction none|ntp|gps] [-monitor] [-duration 1h]
//	        [-interval 5s] [-seed 1] [-plot]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mntp/internal/core"
	"mntp/internal/report"
	"mntp/internal/testbed"
)

func main() {
	protocol := flag.String("protocol", "sntp", "sntp or mntp")
	access := flag.String("access", "wireless", "wireless, wired or cellular")
	correction := flag.String("correction", "ntp", "none, ntp or gps")
	monitor := flag.Bool("monitor", true, "run the monitor-node interference loop")
	duration := flag.Duration("duration", time.Hour, "experiment duration (virtual)")
	interval := flag.Duration("interval", 5*time.Second, "request interval")
	seed := flag.Int64("seed", 1, "scenario seed")
	plot := flag.Bool("plot", false, "render an ASCII plot of the series")
	updateClock := flag.Bool("update-clock", false, "let MNTP update the clock (regular phase)")
	flag.Parse()

	cfg := testbed.Config{Seed: *seed, Monitor: *monitor}
	switch *access {
	case "wireless":
		cfg.Access = testbed.Wireless
	case "wired":
		cfg.Access = testbed.Wired
	case "cellular":
		cfg.Access = testbed.Cellular
	default:
		fmt.Fprintf(os.Stderr, "unknown access %q\n", *access)
		os.Exit(2)
	}
	switch *correction {
	case "none":
	case "ntp":
		cfg.NTPCorrection = true
	case "gps":
		cfg.GPSCorrection = true
	default:
		fmt.Fprintf(os.Stderr, "unknown correction %q\n", *correction)
		os.Exit(2)
	}

	tb := testbed.New(cfg)
	var s *testbed.Series
	switch *protocol {
	case "sntp":
		s = tb.RunSNTP(*interval, *duration)
	case "mntp":
		params := core.DefaultParams(testbed.PoolName)
		params.WarmupPeriod = *duration / 6
		params.WarmupWaitTime = *interval
		params.RegularWaitTime = *interval
		params.ResetPeriod = 2 * *duration
		s = tb.RunMNTP(params, *duration, *updateClock)
	default:
		fmt.Fprintf(os.Stderr, "unknown protocol %q\n", *protocol)
		os.Exit(2)
	}

	sum := s.Summary()
	fmt.Printf("%s over %s (%s correction): %d points, %d requests, %d deferred, %d failed\n",
		*protocol, *access, *correction, len(s.Points), s.Requests, s.Deferred, s.Failed)
	fmt.Printf("|offset|: mean=%.2fms std=%.2fms median=%.2fms p95=%.2fms max=%.2fms\n",
		sum.Mean, sum.Std, sum.Median, sum.P95, sum.Max)
	if resid := s.CorrectedResiduals(); len(resid) > 0 {
		fmt.Printf("corrected residuals: n=%d max=%.2fms\n", len(resid), maxAbs(resid))
	}
	fmt.Printf("final true clock offset: %v\n", tb.TNClock.TrueOffset())

	if *plot {
		p := report.NewPlot("reported offsets", "minutes", "ms")
		var xs, ys []float64
		for _, pt := range s.Points {
			if pt.Accepted {
				xs = append(xs, pt.Elapsed.Minutes())
				ys = append(ys, pt.Offset.Seconds()*1000)
			}
		}
		p.Add(report.Series{Name: *protocol, Marker: '+', X: xs, Y: ys})
		fmt.Println(p.String())
	}
}

func maxAbs(xs []float64) float64 {
	var m float64
	for _, x := range xs {
		if x < 0 {
			x = -x
		}
		if x > m {
			m = x
		}
	}
	return m
}
