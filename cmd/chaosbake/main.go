// Command chaosbake runs the estimator bake-off: every chaos scenario
// under each trend estimator (least squares, Theil-Sen, LAD), printing
// the per-scenario final-accuracy table in the markdown form DESIGN.md
// records. Deterministic — scenarios run in virtual time from fixed
// seeds — so the output is stable across machines.
package main

import (
	"fmt"

	"mntp/internal/chaos"
)

func main() {
	cells := chaos.BakeOff()
	fmt.Print(chaos.BakeOffTable(cells))
	for _, c := range cells {
		for _, v := range c.Violations {
			fmt.Printf("VIOLATION %s/%s: %s\n", c.Scenario, c.Estimator, v)
		}
	}
}
