// Command ntplogan analyzes NTP server pcap traces (as produced by
// ntploggen, or any raw-IP pcap of NTP traffic on port 123) with the
// §3.1 pipeline: OWD extraction with the synchronization filtering
// heuristic, provider grouping and SNTP/NTP classification. It prints
// the Table 1 row, the Figure 1 per-provider min-OWD distributions,
// and the Figure 2 protocol shares for each trace.
//
// Usage:
//
//	ntplogan [-cdf] traces/SU1.pcap [more.pcap ...]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mntp/internal/ipasn"
	"mntp/internal/ntplog"
	"mntp/internal/report"
	"mntp/internal/stats"
)

func main() {
	showCDF := flag.Bool("cdf", false, "render per-provider CDF plots")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: ntplogan [-cdf] trace.pcap ...")
		os.Exit(2)
	}
	reg := ipasn.NewRegistry()

	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		rep, err := ntplog.Analyze(f, reg, ntplog.AnalyzeConfig{})
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			os.Exit(1)
		}

		id := strings.TrimSuffix(filepath.Base(path), ".pcap")
		fmt.Printf("== %s ==\n", path)
		fmt.Println(rep.Table1Row(id).String())
		fmt.Printf("valid clients: %d/%d, SNTP share: %.1f%%\n\n",
			len(rep.ValidClients()), rep.UniqueClients(), rep.ProtocolShare()*100)

		t := report.NewTable("Provider", "Category", "Clients", "SNTP%", "MedMinOWD(ms)", "P25", "P75")
		var cdfs []report.Series
		marks := "abcdefghijklmnopqrstuvwxy"
		for _, agg := range rep.ByProvider() {
			sum := agg.Summary()
			t.AddRow(agg.Provider.Name, agg.Provider.Category.String(), agg.Clients,
				agg.SNTPShare()*100, sum.Median, sum.P25, sum.P75)
			if *showCDF && len(agg.MinOWDs) >= 10 {
				c := stats.NewCDF(agg.MinOWDs)
				xs, ps := c.Points(40)
				cdfs = append(cdfs, report.Series{
					Name: agg.Provider.Name, Marker: rune(marks[(agg.Provider.Rank-1)%len(marks)]),
					X: xs, Y: ps,
				})
			}
		}
		fmt.Println(t.String())
		if *showCDF && len(cdfs) > 0 {
			fmt.Println(report.CDFPlot("CDF of min OWDs per provider", "ms", cdfs))
		}
	}
}
