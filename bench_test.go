// Benchmarks: one per table and figure of the paper's evaluation
// (each runs the experiment that regenerates it, in quick mode so a
// full -bench=. pass stays tractable), ablation benches for MNTP's
// design choices, and micro-benchmarks of the hot protocol paths.
package mntp

import (
	"fmt"
	"testing"
	"time"

	"mntp/internal/clock"
	"mntp/internal/core"
	"mntp/internal/exchange"
	"mntp/internal/experiments"
	"mntp/internal/loadgen"
	"mntp/internal/ntpnet"
	"mntp/internal/ntppkt"
	"mntp/internal/ntptime"
	"mntp/internal/sources"
	"mntp/internal/stats"
	"mntp/internal/testbed"
	"mntp/internal/trend"
	"mntp/internal/tuner"
)

// benchOpts are the reduced-scale settings used by every experiment
// bench.
func benchOpts(seed int64) experiments.Options {
	return experiments.Options{Seed: seed, Quick: true}
}

// runExperiment reports a headline metric as a custom benchmark unit
// so regressions in reproduction quality are visible in bench output.
func runExperiment(b *testing.B, run func(experiments.Options) experiments.Outcome, metric string) {
	b.ReportAllocs()
	var last experiments.Outcome
	for i := 0; i < b.N; i++ {
		last = run(benchOpts(2016 + int64(i)))
	}
	for _, m := range last.Metrics {
		if m.Name == metric {
			b.ReportMetric(m.Measured, metric_unit(m.Unit))
		}
	}
}

func metric_unit(u string) string { return u + "/op" }

func BenchmarkTable1LogAnalysis(b *testing.B) {
	runExperiment(b, experiments.Table1, "scaled measurements")
}

func BenchmarkFigure1MinOWD(b *testing.B) {
	runExperiment(b, experiments.Figure1, "mobile median min-OWD")
}

func BenchmarkFigure2ProtocolShare(b *testing.B) {
	runExperiment(b, experiments.Figure2, "mobile providers mean SNTP share")
}

func BenchmarkFigure3TestbedSetup(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		testbed.New(testbed.Config{Seed: int64(i), Access: testbed.Wireless, Monitor: true})
	}
}

func BenchmarkFigure4WiredVsWireless(b *testing.B) {
	runExperiment(b, experiments.Figure4, "wireless+NTP mean |offset|")
}

func BenchmarkFigure5Cellular(b *testing.B) {
	runExperiment(b, experiments.Figure5, "mean |offset|")
}

func BenchmarkFigure6MNTPvsSNTP(b *testing.B) {
	runExperiment(b, experiments.Figure6, "improvement factor")
}

func BenchmarkFigure7Signals(b *testing.B) {
	runExperiment(b, experiments.Figure7, "rejected offsets")
}

func BenchmarkFigure8NoCorrection(b *testing.B) {
	runExperiment(b, experiments.Figure8, "improvement factor")
}

func BenchmarkFigure9WiredSNTP(b *testing.B) {
	runExperiment(b, experiments.Figure9, "MNTP(wireless) max |offset|")
}

func BenchmarkFigure10WiredSNTPNoCorr(b *testing.B) {
	runExperiment(b, experiments.Figure10, "MNTP(wireless) max |corrected residual|")
}

func BenchmarkFigure11TunerConfigs(b *testing.B) {
	runExperiment(b, experiments.Figure11, "best config RMSE")
}

func BenchmarkFigure12LongRun(b *testing.B) {
	runExperiment(b, experiments.Figure12, "MNTP max |corrected residual|")
}

func BenchmarkTable2TunerSweep(b *testing.B) {
	runExperiment(b, experiments.Table2, "config 1 RMSE")
}

func BenchmarkExtensionEnergy(b *testing.B) {
	runExperiment(b, experiments.ExtensionEnergy, "mntp daily energy (3G)")
}

func BenchmarkExtensionNITZ(b *testing.B) {
	runExperiment(b, experiments.ExtensionNITZ, "mntp worst error")
}

func BenchmarkExtensionSelfTune(b *testing.B) {
	runExperiment(b, experiments.ExtensionSelfTune, "self-tuned RMSE")
}

func BenchmarkExtensionRTSCTS(b *testing.B) {
	runExperiment(b, experiments.ExtensionRTSCTS, "mean with RTS/CTS")
}

func BenchmarkExtensionNTPComparison(b *testing.B) {
	runExperiment(b, experiments.ExtensionNTPComparison, "mntp worst clock error")
}

// --- Ablations: the design choices DESIGN.md calls out. Each bench
// reports the max |offset| accepted by MNTP under the ablated
// configuration; comparing them quantifies each mechanism's
// contribution.

func ablationRun(b *testing.B, mutate func(*core.Params)) {
	b.ReportAllocs()
	var worst float64
	for i := 0; i < b.N; i++ {
		params := core.DefaultParams(testbed.PoolName)
		params.WarmupPeriod = 5 * time.Minute
		params.WarmupWaitTime = 5 * time.Second
		params.RegularWaitTime = 5 * time.Second
		params.ResetPeriod = time.Hour
		mutate(&params)
		tb := testbed.New(testbed.Config{
			Seed: 400 + int64(i), Access: testbed.Wireless, Monitor: true, NTPCorrection: true,
		})
		s := tb.RunMNTP(params, 30*time.Minute, false)
		worst = stats.MaxAbs(s.Reported())
	}
	b.ReportMetric(worst, "maxOffsetMs/op")
}

func BenchmarkAblationFull(b *testing.B) {
	ablationRun(b, func(p *core.Params) {})
}

func BenchmarkAblationNoGating(b *testing.B) {
	ablationRun(b, func(p *core.Params) { p.DisableGating = true })
}

func BenchmarkAblationNoFilter(b *testing.B) {
	ablationRun(b, func(p *core.Params) { p.DisableFilter = true })
}

func BenchmarkAblationNoGatingNoFilter(b *testing.B) {
	ablationRun(b, func(p *core.Params) {
		p.DisableGating = true
		p.DisableFilter = true
	})
}

func BenchmarkAblationNoFalseTickerRejection(b *testing.B) {
	ablationRun(b, func(p *core.Params) { p.DisableFalseTickerRejection = true })
}

// --- Source pool: fan-out plus selection over N in-memory sources.

// benchTransport answers instantly with the system clock's time
// (shifted for the last source, which acts as a falseticker) so the
// bench measures pool machinery, not network waits.
func benchTransport(n int) exchange.Transport {
	clk := clock.System{}
	return exchange.TransportFunc(func(server string, req *ntppkt.Packet) (*ntppkt.Packet, time.Time, error) {
		now := clk.Now()
		if server == fmt.Sprintf("src%d", n-1) {
			now = now.Add(500 * time.Millisecond)
		}
		ts := ntptime.FromTime(now)
		return &ntppkt.Packet{
			Leap: ntppkt.LeapNone, Version: req.Version, Mode: ntppkt.ModeServer,
			Stratum: 2, Origin: req.Transmit, Receive: ts, Transmit: ts,
		}, clk.Now(), nil
	})
}

func BenchmarkPoolFanOutSelect(b *testing.B) {
	for _, n := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("sources=%d", n), func(b *testing.B) {
			servers := make([]string, n)
			for i := range servers {
				servers[i] = fmt.Sprintf("src%d", i)
			}
			pool := sources.New(clock.System{}, benchTransport(n), sources.Config{
				Servers: servers, Parallelism: 4,
			})
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := pool.Round()
				var samples []exchange.Sample
				var idxs []int
				for _, o := range res.Outcomes {
					if o.OK {
						samples = append(samples, o.Sample)
						idxs = append(idxs, o.Index)
					}
				}
				if sel := pool.SelectCombine(samples, idxs); !sel.OK {
					b.Fatal("bench round found no consensus")
				}
			}
		})
	}
}

func BenchmarkMarzulloIntersection(b *testing.B) {
	// 50 sources: 35 agreeing around zero, 15 falsetickers spread out.
	var ivals []sources.Interval
	for i := 0; i < 35; i++ {
		mid := float64(i%7) * 0.001
		ivals = append(ivals, sources.Interval{Lo: mid - 0.05, Mid: mid, Hi: mid + 0.05})
	}
	for i := 0; i < 15; i++ {
		mid := 1.0 + float64(i)
		ivals = append(ivals, sources.Interval{Lo: mid - 0.01, Mid: mid, Hi: mid + 0.01})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if sources.Marzullo(ivals) == nil {
			b.Fatal("majority not found")
		}
	}
}

// --- Serving capacity: loadgen-driven open-loop runs against the
// sharded real-UDP server. The reported served/s is the throughput
// the server actually answered (not the offered rate); comparing the
// shard counts quantifies the SO_REUSEPORT scaling. Sub-benchmarks
// skip where the platform cannot bind a REUSEPORT group.

func benchmarkServerCapacity(b *testing.B, shards int) {
	if shards > 1 && !ntpnet.ReusePortAvailable() {
		b.Skip("SO_REUSEPORT unavailable; multi-shard capacity not measurable")
	}
	var servedPerSec float64
	for i := 0; i < b.N; i++ {
		srv := ntpnet.NewServer(clock.System{}, 2)
		srv.Shards = shards
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		rep, err := loadgen.Run(loadgen.Config{
			Target:   addr.String(),
			Rate:     150000, // past single-shard capacity: expose the serving limit
			Duration: 300 * time.Millisecond,
			Senders:  4,
			Arrival:  loadgen.ArrivalFixed,
			Timeout:  200 * time.Millisecond,
			Seed:     int64(i),
		})
		if err != nil {
			srv.Close()
			b.Fatal(err)
		}
		served := srv.Snapshot().Served
		srv.Close()
		servedPerSec = float64(served) / rep.DurationSec
	}
	b.ReportMetric(servedPerSec, "served/s")
	b.ReportMetric(0, "ns/op") // wall time is fixed by the run length, not meaningful per-op
}

func BenchmarkServerCapacityShards1(b *testing.B) { benchmarkServerCapacity(b, 1) }
func BenchmarkServerCapacityShards2(b *testing.B) { benchmarkServerCapacity(b, 2) }

// --- Micro-benchmarks of hot paths.

func BenchmarkMNTPFilterOffer(b *testing.B) {
	f := core.NewFilter(3*time.Millisecond, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x := time.Duration(i) * 5 * time.Second
		f.Offer(x, time.Duration(i%7)*time.Millisecond)
	}
}

// BenchmarkEstimatorFit compares the trend estimators' per-sample cost
// (add one point to a full window, refit, read the line) across the
// window sizes the filter realistically runs at. Theil-Sen is
// O(window²) per refit and LAD is O(window · iterations), so this is
// the number to watch before widening the default window.
func BenchmarkEstimatorFit(b *testing.B) {
	for _, kind := range trend.Kinds() {
		for _, window := range []int{8, 32, 128} {
			b.Run(fmt.Sprintf("%s/window=%d", kind, window), func(b *testing.B) {
				est := trend.NewEstimator(kind, window, 1e-3)
				// Pre-fill so every measured Add works on a full window.
				for i := 0; i < window; i++ {
					est.Add(float64(i)*5, 10e-6*float64(i)*5+1e-3*float64(i%5))
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					x := float64(window+i) * 5
					est.Add(x, 10e-6*x)
					if _, err := est.Line(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkTunerEmulate(b *testing.B) {
	tb := testbed.New(testbed.Config{Seed: 9, Access: testbed.Wireless, Monitor: true})
	tr := tuner.Collect(tb, []string{testbed.PoolName, testbed.PoolName, testbed.PoolName},
		5*time.Second, 30*time.Minute)
	params := tuner.Table2Configs()[1].Params()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tuner.Emulate(tr, params)
	}
}

func BenchmarkSimulatedHour(b *testing.B) {
	// End-to-end cost of simulating one hour of SNTP at 5 s cadence.
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tb := testbed.New(testbed.Config{
			Seed: 600 + int64(i), Access: testbed.Wireless, Monitor: true,
		})
		tb.RunSNTP(5*time.Second, time.Hour)
	}
}
