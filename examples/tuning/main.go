// Tuning: collect a §5.3 logging trace on the simulated testbed, then
// run the tuner — first the paper's six Table 2 configurations, then a
// small grid search for a better one.
package main

import (
	"fmt"
	"time"

	"mntp/internal/report"
	"mntp/internal/testbed"
	"mntp/internal/tuner"
)

func main() {
	// Logger: SNTP offsets from three pool references every 5 s for
	// four hours of virtual time, channel stressed by the monitor.
	tb := testbed.New(testbed.Config{Seed: 53, Access: testbed.Wireless, Monitor: true})
	sources := []string{testbed.PoolName, testbed.PoolName, testbed.PoolName}
	trace := tuner.Collect(tb, sources, 5*time.Second, 4*time.Hour)
	fmt.Printf("collected %d records (%.0f minutes of virtual time)\n\n",
		len(trace.Records), trace.Records[len(trace.Records)-1].Elapsed.Minutes())

	// Emulator: replay MNTP under the paper's sample configurations.
	t := report.NewTable("Config", "warmup(min)", "warmupWait(min)",
		"regularWait(min)", "reset(min)", "RMSE(ms)", "Requests")
	for _, cfg := range tuner.Table2Configs() {
		res := tuner.Emulate(trace, cfg.Params())
		t.AddRow(cfg.Name, cfg.WarmupMin, cfg.WarmupWaitMin,
			cfg.RegularWaitMin, cfg.ResetMin, res.RMSE, res.Requests)
	}
	fmt.Println("Table 2 configurations on this trace:")
	fmt.Println(t.String())

	// Searcher: a small grid beyond the paper's samples.
	results := tuner.Search(trace, tuner.SearchSpace{
		WarmupMin:      []float64{20, 40, 80},
		WarmupWaitMin:  []float64{0.084, 0.25, 1},
		RegularWaitMin: []float64{5, 15},
		ResetMin:       []float64{240},
	})
	best := results[0]
	fmt.Printf("grid search over %d configurations — best: warmup=%.0fmin "+
		"warmupWait=%.2fmin regularWait=%.0fmin -> RMSE %.2fms with %d requests\n",
		len(results),
		best.Params.WarmupPeriod.Minutes(), best.Params.WarmupWaitTime.Minutes(),
		best.Params.RegularWaitTime.Minutes(), best.RMSE, best.Requests)
}
