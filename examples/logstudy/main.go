// Logstudy: the §3.1 measurement pipeline in miniature — generate a
// small synthetic pcap for one NTP server, analyze it back, and print
// the provider latency/protocol structure the paper's Figures 1 and 2
// are built from.
package main

import (
	"bytes"
	"fmt"
	"log"

	"mntp/internal/ipasn"
	"mntp/internal/ntplog"
	"mntp/internal/report"
)

func main() {
	reg := ipasn.NewRegistry()
	prof, _ := ntplog.ProfileByID("SU1")

	// Generate: real pcap bytes with real NTP packets.
	var trace bytes.Buffer
	clients, requests, err := ntplog.Generate(&trace, prof, reg, ntplog.GenConfig{
		Scale: 1.0 / 40, // ~530 clients for a quick demo
		Seed:  2016,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %s-style capture: %d clients, %d requests, %d bytes of pcap\n\n",
		prof.ID, clients, requests, trace.Len())

	// Analyze: parse packets, extract OWDs, filter unsynchronized
	// clients, classify providers and protocols.
	rep, err := ntplog.Analyze(&trace, reg, ntplog.AnalyzeConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep.Table1Row(prof.ID).String())
	fmt.Printf("valid clients after filtering: %d/%d, server-wide SNTP share %.1f%%\n\n",
		len(rep.ValidClients()), rep.UniqueClients(), rep.ProtocolShare()*100)

	t := report.NewTable("Provider", "Category", "Clients", "SNTP%", "MedianMinOWD(ms)")
	for _, agg := range rep.ByProvider() {
		if agg.Clients < 5 {
			continue
		}
		t.AddRow(agg.Provider.Name, agg.Provider.Category.String(),
			agg.Clients, agg.SNTPShare()*100, agg.Summary().Median)
	}
	fmt.Println(t.String())
	fmt.Println("Note the four latency classes (cloud ≈40ms, ISP ≈50ms, broadband")
	fmt.Println("≈250ms, mobile ≈400–600ms) and the ≥95% SNTP share of mobile carriers.")
}
