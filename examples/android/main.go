// Android: the mobile time stack of §2 of the paper, end to end — a
// phone on a 4G network with the Android policy (NITZ when the
// carrier provides it, otherwise a daily SNTP poll with a 5-second
// update threshold), compared against running MNTP on the same
// device. Two days of virtual time in well under a second.
package main

import (
	"fmt"
	"time"

	"mntp/internal/clock"
	"mntp/internal/core"
	"mntp/internal/netsim"
	"mntp/internal/nitz"
	"mntp/internal/sntp"
	"mntp/internal/stats"
	"mntp/internal/sysclock"
	"mntp/internal/testbed"
)

const twoDays = 48 * time.Hour

// phoneClock is a commodity handset crystal: 45 ppm fast.
var phoneClock = clock.Config{SkewPPM: 45, Seed: 99}

// run executes one policy on a fresh cellular testbed and returns the
// summary of |true clock error| sampled every 10 minutes.
func run(policy func(tb *testbed.Testbed)) stats.Summary {
	cfg := phoneClock
	tb := testbed.New(testbed.Config{Seed: 1234, Access: testbed.Cellular, ClockConfig: &cfg})
	policy(tb)
	var samples []float64
	tb.Sched.Every(10*time.Minute, 10*time.Minute, func() bool {
		off := tb.TNClock.TrueOffset().Seconds() * 1000
		if off < 0 {
			off = -off
		}
		samples = append(samples, off)
		return tb.Sched.Now() < twoDays
	})
	tb.Sched.Run()
	return stats.Summarize(samples)
}

func main() {
	fmt.Println("A 45ppm phone on 4G for two days (|clock error| sampled every 10min):")
	fmt.Println()

	// Policy 1: carrier NITZ only (signals on network boundary
	// crossings, ~every 5 h; applied when off by more than 5 s).
	nitzSum := run(func(tb *testbed.Testbed) {
		truth := clock.NewTrue(testbed.Epoch, tb.Sched.Now)
		m := nitz.NewManager(tb.TNClock, nil, nitz.ManagerConfig{NITZAvailable: true})
		src := nitz.NewSource(tb.Sched, truth, nitz.SourceConfig{
			MeanBoundaryInterval: 5 * time.Hour, Seed: 7,
		})
		src.Run(twoDays, m.OnNITZ)
	})
	fmt.Printf("  NITZ only:            mean %8.0f ms   p95 %8.0f ms   max %8.0f ms\n",
		nitzSum.Mean, nitzSum.P95, nitzSum.Max)

	// Policy 2: no NITZ — the Android fallback (SNTP once a day,
	// 3 retries, update only if off by > 5 s).
	androidSum := run(func(tb *testbed.Testbed) {
		tb.Sched.Go(func(p *netsim.Proc) {
			tr := &netsim.Transport{Net: tb.Net, Proc: p, Clock: tb.TNClock}
			cl := sntp.New(tb.TNClock, tr, p, sntp.AndroidConfig(testbed.PoolName))
			m := nitz.NewManager(tb.TNClock, cl, nitz.ManagerConfig{NITZAvailable: false})
			m.RunFallback(p, twoDays)
		})
	})
	fmt.Printf("  Android SNTP daily:   mean %8.0f ms   p95 %8.0f ms   max %8.0f ms\n",
		androidSum.Mean, androidSum.P95, androidSum.Max)

	// Policy 3: MNTP with clock updates and drift correction.
	mntpSum := run(func(tb *testbed.Testbed) {
		tb.Sched.Go(func(p *netsim.Proc) {
			tr := &netsim.Transport{Net: tb.Net, Proc: p, Clock: tb.TNClock}
			params := core.DefaultParams(testbed.PoolName)
			c := core.New(tb.TNClock, sysclock.SimAdjuster{Clock: tb.TNClock},
				tr, tb.Hints, p, params)
			c.Run(twoDays)
		})
	})
	fmt.Printf("  MNTP:                 mean %8.0f ms   p95 %8.0f ms   max %8.0f ms\n",
		mntpSum.Mean, mntpSum.P95, mntpSum.Max)

	fmt.Println()
	fmt.Println("NITZ and the Android policy hold the clock within *seconds* (their 5s")
	fmt.Println("threshold is the design goal); MNTP holds it within tens to hundreds")
	fmt.Println("of milliseconds — bounded by the 4G path asymmetry, not the policy.")
}
