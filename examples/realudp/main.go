// Realudp: the whole stack over real sockets on loopback — a local
// NTP server serving a deliberately shifted clock, an SNTP client
// measuring it, and an MNTP client (with a scripted hints provider)
// doing the same with filtering. Demonstrates that the protocol code
// is transport-agnostic: the same clients run in simulation and over
// UDP.
package main

import (
	"fmt"
	"log"
	"time"

	"mntp/internal/clock"
	"mntp/internal/core"
	"mntp/internal/hints"
	"mntp/internal/ntpnet"
	"mntp/internal/sntp"
)

func main() {
	// A local server whose clock is 250 ms ahead of ours: four serve
	// goroutines share the socket, and a (generous) rate limit keeps
	// the bounded abusive-client table in play.
	srv := ntpnet.NewServer(&clock.Fixed{Base: clock.System{}, Error: 250 * time.Millisecond}, 2)
	srv.Workers = 4
	srv.RateLimit = 1000
	srv.RateWindow = time.Minute
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("local NTP server on %s, clock +250ms, 4 workers\n\n", addr)

	transport := &ntpnet.Client{Timeout: 2 * time.Second}

	// SNTP: one-shot queries.
	cl := sntp.New(clock.System{}, transport, sntp.WallSleeper{},
		sntp.Config{Server: addr.String(), Retries: 1})
	for i := 0; i < 3; i++ {
		s, err := cl.Query()
		if err != nil {
			log.Fatalf("sntp query: %v", err)
		}
		fmt.Printf("SNTP: offset %+8.3fms delay %6.3fms stratum %d\n",
			s.Offset.Seconds()*1000, s.Delay.Seconds()*1000, s.Stratum)
	}

	// MNTP over the same transport: a scripted hints provider stands
	// in for the wireless adaptor (flickering between favorable and
	// unfavorable so the gating is visible).
	tick := 0
	scripted := hints.ProviderFunc(func() hints.Hints {
		tick++
		if tick%4 == 0 {
			return hints.Hints{RSSI: -82, Noise: -67} // unfavorable
		}
		return hints.Hints{RSSI: -52, Noise: -93}
	})

	params := core.DefaultParams(addr.String())
	params.WarmupServers = []string{addr.String(), addr.String(), addr.String()}
	params.RegularServer = addr.String()
	params.WarmupPeriod = 3 * time.Second
	params.WarmupWaitTime = 500 * time.Millisecond
	params.RegularWaitTime = 500 * time.Millisecond
	params.ResetPeriod = time.Minute
	params.HintPollInterval = 200 * time.Millisecond

	fmt.Println("\nMNTP over UDP (scripted hints, ~8s):")
	c := core.New(clock.System{}, nil, transport, scripted, sntp.WallSleeper{}, params)
	c.OnEvent = func(e core.Event) {
		switch e.Kind {
		case core.EventAccepted, core.EventRejected:
			fmt.Printf("MNTP %-8s %-9s offset %+8.3fms (rssi %5.1f noise %5.1f)\n",
				e.Phase, e.Kind, e.Offset.Seconds()*1000, e.Hints.RSSI, e.Hints.Noise)
		case core.EventDeferred:
			fmt.Printf("MNTP %-8s deferred  (rssi %5.1f noise %5.1f)\n",
				e.Phase, e.Hints.RSSI, e.Hints.Noise)
		}
	}
	c.Run(8 * time.Second)
	fmt.Printf("\nserver metrics: %s (rate table %d clients)\n",
		srv.Snapshot(), srv.RateTableSize())
}
