// Quickstart: build a simulated wireless testbed, run SNTP and MNTP
// side by side for an hour of virtual time, and print the comparison
// — the paper's headline result in under a minute of wall time.
package main

import (
	"fmt"
	"time"

	"mntp/internal/core"
	"mntp/internal/stats"
	"mntp/internal/testbed"
)

func main() {
	const seed = 42

	// A testbed is the Figure 3 topology: WAP + target node + monitor
	// node + a pool of simulated NTP servers. The monitor node keeps
	// the wireless channel "variable and lossy at random intervals".
	cfg := testbed.Config{
		Seed:          seed,
		Access:        testbed.Wireless,
		Monitor:       true,
		NTPCorrection: true, // discipline the clock like the paper's baseline
	}

	// Leg 1: plain SNTP querying the pool every 5 s.
	sntpSeries := testbed.New(cfg).RunSNTP(5*time.Second, time.Hour)

	// Leg 2: MNTP with the same request budget (fresh but identically
	// seeded testbed, so the channel realization matches).
	params := core.DefaultParams(testbed.PoolName)
	params.WarmupPeriod = 10 * time.Minute
	params.WarmupWaitTime = 5 * time.Second
	params.RegularWaitTime = 5 * time.Second
	params.ResetPeriod = 2 * time.Hour
	mntpSeries := testbed.New(cfg).RunMNTP(params, time.Hour, false)

	sntpSum := stats.Summarize(sntpSeries.AbsReported())
	mntpSum := stats.Summarize(mntpSeries.AbsReported())

	fmt.Println("One hour on a stressed wireless channel, NTP-corrected clock:")
	fmt.Printf("  SNTP: %4d samples  mean |offset| %6.1f ms   max %6.1f ms\n",
		sntpSum.N, sntpSum.Mean, sntpSum.Max)
	fmt.Printf("  MNTP: %4d samples  mean |offset| %6.1f ms   max %6.1f ms"+
		"   (%d deferred, %d requests)\n",
		mntpSum.N, mntpSum.Mean, mntpSum.Max, mntpSeries.Deferred, mntpSeries.Requests)
	if mntpSum.Max > 0 {
		fmt.Printf("  improvement: SNTP's worst offset is %.1fx MNTP's\n",
			sntpSum.Max/mntpSum.Max)
	}
	fmt.Println()
	fmt.Println("The paper (Figure 6) reports SNTP max 292 ms vs MNTP max 23 ms (12x).")
}
