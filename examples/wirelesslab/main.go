// Wirelesslab: the Figure 6/7 laboratory experiment end to end, with
// the signals-and-selection view — watch MNTP defer requests when the
// channel degrades and reject offsets that stray from the drift trend.
package main

import (
	"fmt"
	"time"

	"mntp/internal/core"
	"mntp/internal/netsim"
	"mntp/internal/report"
	"mntp/internal/testbed"
)

func main() {
	tb := testbed.New(testbed.Config{
		Seed: 7, Access: testbed.Wireless, Monitor: true, NTPCorrection: true,
	})

	params := core.DefaultParams(testbed.PoolName)
	params.WarmupPeriod = 10 * time.Minute
	params.WarmupWaitTime = 5 * time.Second
	params.RegularWaitTime = 5 * time.Second
	params.ResetPeriod = 2 * time.Hour

	// Run MNTP directly (rather than through testbed.RunMNTP) to show
	// the event stream API.
	var events []core.Event
	tb.Sched.Go(func(p *netsim.Proc) {
		tr := &netsim.Transport{Net: tb.Net, Proc: p, Clock: tb.TNClock}
		c := core.New(tb.TNClock, nil, tr, tb.Hints, p, params)
		c.OnEvent = func(e core.Event) { events = append(events, e) }
		c.Run(time.Hour)
	})
	tb.Sched.Run()

	// Signals plot: RSSI and noise at every attempt (Figure 7).
	sig := report.NewPlot("Signals at each synchronization attempt", "minutes", "dBm")
	var rssiX, rssiY, noiseX, noiseY []float64
	counts := map[core.EventKind]int{}
	for _, e := range events {
		counts[e.Kind]++
		x := e.Elapsed.Minutes()
		rssiX, rssiY = append(rssiX, x), append(rssiY, e.Hints.RSSI)
		noiseX, noiseY = append(noiseX, x), append(noiseY, e.Hints.Noise)
	}
	sig.Add(report.Series{Name: "rssi", Marker: '.', X: rssiX, Y: rssiY})
	sig.Add(report.Series{Name: "noise", Marker: 'n', X: noiseX, Y: noiseY})
	fmt.Println(sig.String())

	// Selection plot: accepted vs rejected offsets (Figure 6).
	sel := report.NewPlot("MNTP offset selection", "minutes", "offset (ms)")
	var ax, ay, jx, jy []float64
	for _, e := range events {
		switch e.Kind {
		case core.EventAccepted:
			ax, ay = append(ax, e.Elapsed.Minutes()), append(ay, e.Offset.Seconds()*1000)
		case core.EventRejected:
			jx, jy = append(jx, e.Elapsed.Minutes()), append(jy, e.Offset.Seconds()*1000)
		}
	}
	sel.Add(report.Series{Name: "accepted", Marker: 'o', X: ax, Y: ay})
	sel.Add(report.Series{Name: "rejected", Marker: 'r', X: jx, Y: jy})
	fmt.Println(sel.String())

	fmt.Printf("events: %d accepted, %d rejected by the filter, %d deferred by the gate, %d failed\n",
		counts[core.EventAccepted], counts[core.EventRejected],
		counts[core.EventDeferred], counts[core.EventQueryFailed])
}
