#!/usr/bin/env bash
# Capacity benchmark over loopback: plain vs NTS-authenticated serving
# against the same ntpserver (-nts), emitting a single JSON document
# (schema bench_capacity/v1) with the achieved rate and tail latency of
# both legs. CI runs this to produce BENCH_capacity.json; committed
# snapshots at the repo root track the trajectory across changes.
#
# Environment knobs:
#   RATE      offered req/s for the plain leg        (default 20000)
#   NTS_RATE  offered req/s for the NTS leg          (default RATE/4)
#   DURATION  send phase per leg                     (default 3s)
#   SHARDS    server listen shards                   (default 2)
#   POPULATION simulated client population, plain leg (default 64)
#   OUT       output path                            (default BENCH_capacity.json)
set -euo pipefail
cd "$(dirname "$0")/.."

RATE=${RATE:-20000}
NTS_RATE=${NTS_RATE:-$((RATE / 4))}
DURATION=${DURATION:-3s}
SHARDS=${SHARDS:-2}
POPULATION=${POPULATION:-64}
OUT=${OUT:-BENCH_capacity.json}
NTP_ADDR=${NTP_ADDR:-127.0.0.1:12133}
KE_ADDR=${KE_ADDR:-127.0.0.1:14460}

tmp=$(mktemp -d)
trap 'kill $SRV 2>/dev/null || true; rm -rf "$tmp"' EXIT

go build -o "$tmp/ntpserver" ./cmd/ntpserver
go build -o "$tmp/ntpload" ./cmd/ntpload

"$tmp/ntpserver" -listen "$NTP_ADDR" -shards "$SHARDS" -stats 0 \
    -nts -nts-listen "$KE_ADDR" -nts-cert-out "$tmp/ca.pem" &
SRV=$!
sleep 1

echo "== plain leg: $RATE req/s for $DURATION" >&2
"$tmp/ntpload" -target "$NTP_ADDR" -rate "$RATE" -duration "$DURATION" \
    -population "$POPULATION" -json "$tmp/plain.json" >&2

echo "== NTS leg: $NTS_RATE req/s for $DURATION" >&2
"$tmp/ntpload" -target "$NTP_ADDR" -rate "$NTS_RATE" -duration "$DURATION" \
    -nts "$KE_ADDR" -nts-ca "$tmp/ca.pem" -json "$tmp/nts.json" >&2

kill $SRV
wait $SRV 2>/dev/null || true

PLAIN="$tmp/plain.json" NTS="$tmp/nts.json" OUT="$OUT" SHARDS="$SHARDS" python3 - <<'EOF'
import json, os, platform

def leg(path):
    r = json.load(open(path))
    out = {
        "offered_rate": r["offered_rate"],
        "achieved_send_rate": round(r["achieved_send_rate"], 1),
        "received_rate": round(r["received_rate"], 1),
        "loss_fraction": round(r["loss_fraction"], 5),
        "kod": r.get("kod", 0),
        "p50_us": r["latency"]["p50_us"],
        "p99_us": r["latency"]["p99_us"],
    }
    for k in ("nts_sessions", "kod_nts", "nts_auth_fail"):
        if k in r:
            out[k] = r[k]
    return out

doc = {
    "schema": "bench_capacity/v1",
    "host": {"os": platform.system().lower(), "machine": platform.machine(),
             "cpus": os.cpu_count()},
    "config": {"shards": int(os.environ["SHARDS"]),
               "duration_sec": json.load(open(os.environ["PLAIN"]))["duration_sec"]},
    "plain": leg(os.environ["PLAIN"]),
    "nts": leg(os.environ["NTS"]),
}
out = os.environ["OUT"]
json.dump(doc, open(out, "w"), indent=2)
open(out, "a").write("\n")
print("wrote", out)
EOF
